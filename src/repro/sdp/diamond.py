"""Diamond-norm computations: unconstrained, (Q, λ)- and (ρ̂, δ)-constrained.

All quantities follow the *diamond distance* convention of Eq. (2): the value
reported for a pair of channels (or for a Hermitian-preserving difference map
Φ) is ``max_rho 0.5 || (Phi ⊗ I)(rho) ||_1`` subject to the input constraint.
For the paper's bit-flip channel with probability p this distance from the
identity is exactly p, so the worst-case bound of a circuit is
``num_gates * p`` — matching the last column of Table 2.

Soundness: every value returned by this module is a *certified dual bound*
(see :mod:`repro.sdp.certificates`); the ADMM solver only influences how tight
it is.  Two candidate duals are always tried — the analytic ``J₊`` candidate
and the ADMM candidate — and the smaller certified value wins.

The entry point used by the error logic is :func:`gate_error_bound`, which
additionally exploits two exact reductions:

* a unitary factoring step — for a noisy gate ``N ∘ U`` the difference from
  ``U`` equals ``(N - id) ∘ U``, so the constrained norm equals that of
  ``N - id`` with the predicate pushed through ``U``;
* a tensor-factor reduction — when the noise acts non-trivially on only one
  qubit of a 2-qubit gate (as in the paper's model), the SDP is reduced to
  the single-qubit problem with the correspondingly reduced predicate, which
  is an upper bound by the data-processing inequality.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import os
import threading
import time
import weakref

import numpy as np
import scipy.linalg

from ..config import SDPConfig
from ..errors import SDPError
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..linalg.channels import (
    QuantumChannel,
    choi_output_trace_map,
    choi_stack,
    identity_channel,
    unitary_conjugate_stack,
)
from ..linalg.hermitian import hermitian_basis, hvec
from ..linalg.norms import frobenius_norm, trace_norm
from ..linalg.partial_trace import partial_trace_keep
from .certificates import (
    DualCertificate,
    certified_values_batch,
    repair_dual_candidates_batch,
    verify_certificate,
)
from .kernel import (
    PackedSDP,
    admm_solve_packed_batch,
    get_layout,
    pack_hermitian_stack,
    positive_part_stack,
    unpack_hermitian_stack,
)
from .problem import BlockVector, SDPProblem

__all__ = [
    "DiamondNormBound",
    "build_constrained_diamond_sdp",
    "constrained_diamond_norm",
    "constrained_diamond_norms_batch",
    "diamond_distance",
    "rho_delta_diamond_norm",
    "q_lambda_diamond_norm",
    "rho_delta_constraint_bound",
    "reduced_problem_dim",
    "gate_error_bound",
    "gate_error_bounds_batch",
    "solve_class_label",
    "GateBoundCache",
]


@dataclasses.dataclass(frozen=True)
class DiamondNormBound:
    """A certified upper bound on a (possibly constrained) diamond distance.

    Attributes:
        value: the certified upper bound.
        certificate: the verified dual-feasible point establishing the bound.
        primal_estimate: the (approximate, not certified) primal value from
            ADMM; ``value - primal_estimate`` estimates the slack.
        method: ``"certified"`` (ADMM + certificate) or ``"fast"``
            (analytic J₊ candidate only).
        iterations: ADMM iterations spent (0 in fast mode).
        converged: whether ADMM hit its tolerance.
    """

    value: float
    certificate: DualCertificate
    primal_estimate: float
    method: str
    iterations: int = 0
    converged: bool = True
    choi: np.ndarray | None = None

    @property
    def estimated_gap(self) -> float:
        return max(0.0, self.value - self.primal_estimate)


# ---------------------------------------------------------------------------
# SDP construction (Theorem 6.1 / Eq. 2)
# ---------------------------------------------------------------------------

def build_constrained_diamond_sdp(
    choi: np.ndarray,
    constraint_operator: np.ndarray | None,
    constraint_bound: float,
) -> SDPProblem:
    """Assemble Eq. (2) in the standard primal form used by the ADMM solver.

    Variable blocks: ``W`` (dim_out*dim_in square), the slack ``S`` of the
    operator inequality ``I ⊗ rho >= W``, ``rho`` (dim_in square), and — when
    the linear constraint is active — a scalar slack ``t >= 0`` for
    ``tr(Q rho) - t = c``.  The objective is ``min <-J, W>`` so the SDP's
    optimal value is the negative of the diamond distance.
    """
    choi = np.asarray(choi, dtype=np.complex128)
    big = choi.shape[0]
    dim = int(round(np.sqrt(big)))
    if dim * dim != big:
        raise SDPError(f"Choi matrix dimension {big} is not a perfect square")

    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    dims = [big, big, dim] + ([1] if use_constraint else [])

    objective_blocks = [
        -choi,
        np.zeros((big, big), dtype=np.complex128),
        np.zeros((dim, dim), dtype=np.complex128),
    ]
    if use_constraint:
        objective_blocks.append(np.zeros((1, 1), dtype=np.complex128))
    problem = SDPProblem(dims, BlockVector(objective_blocks))

    zero_big = np.zeros((big, big), dtype=np.complex128)
    zero_small = np.zeros((dim, dim), dtype=np.complex128)
    zero_scalar = np.zeros((1, 1), dtype=np.complex128)

    # (E1)  <B_m, I ⊗ rho> - <B_m, W> - <B_m, S> = 0 for a Hermitian basis B_m.
    # Ordered like hvec so the dual multipliers reassemble into Z directly.
    for index, basis_element in enumerate(hermitian_basis(big)):
        reduced = choi_output_trace_map(basis_element)
        blocks = [-basis_element, -basis_element, reduced]
        if use_constraint:
            blocks.append(zero_scalar)
        problem.add_constraint(blocks, 0.0, label=f"coupling[{index}]")

    # (E2)  tr(rho) = 1.
    blocks = [zero_big, zero_big, np.eye(dim, dtype=np.complex128)]
    if use_constraint:
        blocks.append(zero_scalar)
    problem.add_constraint(blocks, 1.0, label="trace")

    # (E3)  tr(Q rho) - t = c.
    if use_constraint:
        operator = np.asarray(constraint_operator, dtype=np.complex128)
        if operator.shape != (dim, dim):
            raise SDPError(
                f"constraint operator shape {operator.shape} does not match input dim {dim}"
            )
        problem.add_constraint(
            [zero_big, zero_big, operator, -np.eye(1, dtype=np.complex128)],
            float(constraint_bound),
            label="predicate",
        )
    return problem


# ---------------------------------------------------------------------------
# Problem templates: amortise assembly + factorisation across solves
# ---------------------------------------------------------------------------

class _ShapeTemplate:
    """Everything about Eq. (2) that depends only on the problem *shape*.

    For a fixed Choi dimension ``big`` (and whether a predicate constraint is
    present) the coupling constraints (E1), the trace constraint (E2), the
    packed layout, and the shape part of the normal matrix ``A A*`` — plus
    its Cholesky factor — are all data-independent.  A template assembles
    them once; :meth:`instantiate` then produces a ready-to-iterate
    :class:`PackedSDP` for a concrete (Choi, predicate) pair by writing the
    data vectors and, when constrained, appending the single predicate row
    with a rank-one block-Cholesky update instead of refactorising.

    Templates are immutable shape data, so solves stay deterministic and
    independent of call order.
    """

    def __init__(self, big: int, use_constraint: bool):
        dim = int(round(np.sqrt(big)))
        if dim * dim != big:
            raise SDPError(f"Choi matrix dimension {big} is not a perfect square")
        self.big = big
        self.dim = dim
        self.use_constraint = bool(use_constraint)
        dims = (big, big, dim) + ((1,) if use_constraint else ())
        self.layout = get_layout(dims)
        self.n = self.layout.total_real_dim
        bb = big * big
        self.bb = bb

        # (E1)  <B_m, I ⊗ rho> - <B_m, W> - <B_m, S> = 0.  In packed-real
        # coordinates hvec(B_m) of the orthonormal basis is the unit vector
        # e_m, so the W/S parts of the constraint matrix are just -I.
        num_shape_rows = bb + 1
        a = np.zeros((num_shape_rows, self.n))
        a[:bb, :bb] = -np.eye(bb)
        a[:bb, bb : 2 * bb] = -np.eye(bb)
        for index, basis_element in enumerate(hermitian_basis(big)):
            a[index, 2 * bb : 2 * bb + dim * dim] = hvec(
                choi_output_trace_map(basis_element)
            )
        # (E2)  tr(rho) = 1.
        a[bb, 2 * bb : 2 * bb + dim * dim] = hvec(np.eye(dim, dtype=np.complex128))
        self.a_shape = a
        self.b_shape = np.zeros(num_shape_rows)
        self.b_shape[bb] = 1.0

        normal = a @ a.T
        self.ridge = 1e-12 * max(1.0, float(np.trace(normal)) / normal.shape[0])
        self.chol_shape = scipy.linalg.cholesky(
            normal + self.ridge * np.eye(num_shape_rows),
            lower=True,
            check_finite=False,
        )

    def instantiate(
        self,
        scaled_choi: np.ndarray,
        operator: np.ndarray | None,
        bound_c: float,
    ) -> PackedSDP:
        """A ready-to-iterate packed problem for one (Choi, predicate) pair."""
        return self.instantiate_batch(
            [scaled_choi], [operator], [bound_c]
        )[0]

    def instantiate_batch(
        self,
        scaled_chois: list[np.ndarray],
        operators: list[np.ndarray | None],
        bounds_c: list[float],
    ) -> list[PackedSDP]:
        """Ready-to-iterate packed problems for a whole solve class.

        The objective vectors (and, when constrained, the predicate rows) of
        all requests are written with one batched pack
        (:func:`repro.sdp.kernel.pack_hermitian_stack`, the exact elementwise
        operations of ``hvec``), so instantiation does no per-request Python
        matrix work beyond the rank-one Cholesky row append — which stays
        per-problem because its triangular solve must remain bit-identical
        between batch sizes.
        """
        count = len(scaled_chois)
        c = np.zeros((count, self.n))
        c[:, : self.bb] = -pack_hermitian_stack(np.stack(scaled_chois))
        if not self.use_constraint:
            return [
                PackedSDP(
                    a=self.a_shape,
                    b=self.b_shape,
                    c=c[index],
                    layout=self.layout,
                    factor=(self.chol_shape, True),
                )
                for index in range(count)
            ]
        # (E3)  tr(Q rho) - t = c: the only data-dependent row.
        checked = []
        for operator in operators:
            operator = np.asarray(operator, dtype=np.complex128)
            if operator.shape != (self.dim, self.dim):
                raise SDPError(
                    f"constraint operator shape {operator.shape} does not match "
                    f"input dim {self.dim}"
                )
            checked.append(operator)
        rows = np.zeros((count, self.n))
        rows[:, 2 * self.bb : 2 * self.bb + self.dim * self.dim] = (
            pack_hermitian_stack(np.stack(checked))
        )
        rows[:, -1] = -1.0
        problems = []
        for index in range(count):
            row = rows[index]
            a = np.vstack([self.a_shape, row[None, :]])
            b = np.concatenate([self.b_shape, [float(bounds_c[index])]])
            # Append the row to the cached Cholesky factor of the shape normal
            # matrix:  chol([[S, u], [u', s]]) = [[L, 0], [w', d]]  with
            # L w = u and d = sqrt(s - w'w).
            u = self.a_shape @ row
            w = scipy.linalg.solve_triangular(
                self.chol_shape, u, lower=True, check_finite=False
            )
            d_squared = float(row @ row) + self.ridge - float(w @ w)
            d = float(np.sqrt(max(d_squared, self.ridge)))
            m = a.shape[0]
            factor = np.zeros((m, m))
            factor[: m - 1, : m - 1] = self.chol_shape
            factor[m - 1, : m - 1] = w
            factor[m - 1, m - 1] = d
            problems.append(
                PackedSDP(a=a, b=b, c=c[index], layout=self.layout, factor=(factor, True))
            )
        return problems


_TEMPLATES: dict[tuple[int, bool], _ShapeTemplate] = {}
_TEMPLATES_LOCK = threading.Lock()


def _get_template(big: int, use_constraint: bool) -> _ShapeTemplate:
    key = (int(big), bool(use_constraint))
    template = _TEMPLATES.get(key)
    if template is None:
        with _TEMPLATES_LOCK:
            template = _TEMPLATES.get(key)
            if template is None:
                template = _ShapeTemplate(*key)
                _TEMPLATES[key] = template
    return template


# ---------------------------------------------------------------------------
# Core solve-and-certify routine
# ---------------------------------------------------------------------------

def constrained_diamond_norm(
    choi: np.ndarray,
    *,
    constraint_operator: np.ndarray | None = None,
    constraint_bound: float = 0.0,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Certified upper bound on a constrained diamond distance.

    Args:
        choi: Choi matrix of the Hermitian-preserving difference map Φ
            (output ⊗ input ordering).
        constraint_operator: the operator Q of ``tr(Q rho) >= c`` (None for
            the unconstrained diamond distance).
        constraint_bound: the bound c; a non-positive value makes the
            constraint vacuous and the computation unconstrained.
        config: SDP engine configuration (mode, tolerances, iteration caps).
    """
    return constrained_diamond_norms_batch(
        [(choi, constraint_operator, constraint_bound)], config=config
    )[0]


@dataclasses.dataclass
class _PreparedSolve:
    """A scaled, symmetrised solve request, shared by single and batch paths."""

    choi: np.ndarray
    scaled_choi: np.ndarray
    scale: float
    operator: np.ndarray | None
    bound_c: float
    use_constraint: bool
    zero: bool
    big: int


def _prepare_solve(
    choi: np.ndarray,
    constraint_operator: np.ndarray | None,
    constraint_bound: float,
) -> _PreparedSolve:
    choi = np.asarray(choi, dtype=np.complex128)
    choi = (choi + choi.conj().T) / 2
    scale = trace_norm(choi)
    if scale <= 1e-300:
        return _PreparedSolve(
            choi=choi,
            scaled_choi=choi,
            scale=0.0,
            operator=None,
            bound_c=float(constraint_bound),
            use_constraint=False,
            zero=True,
            big=choi.shape[0],
        )
    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    operator = (
        np.asarray(constraint_operator, dtype=np.complex128) if use_constraint else None
    )
    return _PreparedSolve(
        choi=choi,
        scaled_choi=choi / scale,
        scale=scale,
        operator=operator,
        bound_c=float(constraint_bound) if use_constraint else 0.0,
        use_constraint=use_constraint,
        zero=False,
        big=choi.shape[0],
    )


def _zero_bound(prepared: _PreparedSolve) -> DiamondNormBound:
    zero_cert = DualCertificate(
        0.0, np.zeros_like(prepared.choi), 0.0, None, prepared.bound_c
    )
    return DiamondNormBound(0.0, zero_cert, 0.0, method="exact-zero")


def _certify_solutions_batch(
    group: list[_PreparedSolve],
    results: list | None,
    packeds: list[PackedSDP] | None,
) -> list[DiamondNormBound]:
    """Verify every dual certificate of one solve class in a single fused pass.

    ``group`` holds same-shaped prepared solves (one ``big``, one
    ``use_constraint``); ``results``/``packeds`` are the aligned batched ADMM
    outcomes and instantiated problems, or None in fast mode (analytic J₊
    candidate only).

    The per-request candidate loop of the historical path is replaced by
    whole-stack operations: the dual slack blocks of *all* results are
    unpacked with one :class:`~repro.sdp.kernel.BlockLayout` gather, every
    candidate of every request is repaired with two batched PSD projections,
    and the certified values (including the golden-section search over the
    constraint multiplier) are computed for the full ``(request, candidate)``
    stack at once.  Per-element arithmetic is independent of the batch
    composition, so certifying a class in one fused pass is bit-identical to
    certifying each gate on its own.
    """
    chois = np.stack([p.scaled_choi for p in group])
    big = group[0].big
    use_constraint = group[0].use_constraint
    # Candidate 1: the analytic J₊ dual point (always feasible, no solve).
    candidates = positive_part_stack(chois)[:, None]
    y_hints = None
    if results is not None:
        # Dual multipliers of the coupling constraints reassemble into Z; the
        # dual slack blocks give two more candidates (S_W = Z - J, S_S = Z).
        y_stack = np.stack([result.y for result in results])
        s_stack = np.stack([result.s_vec for result in results])
        layout = packeds[0].layout
        big_group = next(g for g in layout.groups if g.dim == big)
        s_blocks = layout.unpack_group(s_stack, big_group)
        z_from_y = unpack_hermitian_stack(y_stack[:, : big * big], big)
        candidates = np.concatenate(
            [
                candidates,
                z_from_y[:, None],
                (s_blocks[:, 0] + chois)[:, None],
                s_blocks[:, 1][:, None],
            ],
            axis=1,
        )
        if use_constraint:
            # The multiplier of the predicate constraint seeds the 1-D search.
            y_hints = np.abs(y_stack[:, -1])[:, None]

    repaired = repair_dual_candidates_batch(candidates, chois[:, None])
    if use_constraint:
        operators = np.stack(
            [(p.operator + p.operator.conj().T) / 2 for p in group]
        )
        values, ys = certified_values_batch(
            repaired,
            constraint_operators=operators[:, None],
            constraint_bounds=np.array([p.bound_c for p in group])[:, None],
            y_hints=y_hints,
            share_bracket=True,
        )
    else:
        operators = None
        values, ys = certified_values_batch(repaired)

    bounds: list[DiamondNormBound] = []
    for index, prepared in enumerate(group):
        best = int(np.argmin(values[index]))
        scale = prepared.scale
        # Undo the scaling: multiplying (Z, y) by `scale` keeps feasibility
        # for the original Choi matrix and scales the dual objective linearly.
        final = DualCertificate(
            value=float(values[index, best]) * scale,
            z=repaired[index, best] * scale,
            y=float(ys[index, best]) * scale,
            constraint_operator=operators[index] if use_constraint else None,
            constraint_bound=prepared.bound_c,
        )
        result = results[index] if results is not None else None
        # Primal estimate: tr(J W) with W the first block (objective was -J).
        primal_estimate = (
            -result.primal_objective * scale if result is not None else 0.0
        )
        bounds.append(
            DiamondNormBound(
                value=max(0.0, final.value),
                certificate=final,
                primal_estimate=max(0.0, primal_estimate),
                method="certified" if result is not None else "fast",
                iterations=result.iterations if result is not None else 0,
                converged=result.converged if result is not None else True,
                choi=prepared.choi,
            )
        )
    return bounds


def solve_class_label(big: int, use_constraint: bool) -> str:
    """Human-readable label of one SDP template shape (a *solve class*).

    ``big`` is the template's embedded block dimension; constrained and
    unconstrained problems of the same dimension instantiate different
    templates and therefore cost differently, so they are distinct classes.
    """
    return f"dim{big}_{'constrained' if use_constraint else 'unconstrained'}"


def constrained_diamond_norms_batch(
    requests: list[tuple[np.ndarray, np.ndarray | None, float]],
    *,
    config: SDPConfig | None = None,
    timing_events: list | None = None,
) -> list[DiamondNormBound]:
    """Certified bounds for many constrained diamond norms, solved in lock-step.

    ``requests`` is a list of ``(choi, constraint_operator, constraint_bound)``
    triples.  Requests whose instantiated problems share a template shape are
    solved by one batched ADMM run (:func:`repro.sdp.kernel.admm_solve_packed_batch`)
    and their dual certificates verified by one fused certification pass
    (:func:`_certify_solutions_batch`), which turns the per-iteration *and*
    per-certificate cost of the whole batch into a handful of batched numpy
    calls.  Every returned bound still carries its own independently verified
    dual certificate, and :func:`constrained_diamond_norm` is a batch of one
    through this same code, so batched and one-at-a-time results are
    bit-identical.

    ``timing_events``, when given, receives one
    ``{"solve_class", "count", "seconds"}`` dict per template group — the
    per-solve-class timing record persisted with job outcomes.  Timing only
    observes the clock around each group; it never regroups or reorders the
    batch, so instrumented solves stay bit-identical to bare ones.
    """
    config = config or SDPConfig()
    config.validate()
    prepared = [
        _prepare_solve(choi, operator, bound) for choi, operator, bound in requests
    ]
    bounds: list[DiamondNormBound | None] = [None] * len(prepared)

    solve = config.mode in ("certified", "auto")
    # In fast mode nothing is batch-solved: the groups below are certified
    # from the analytic J₊ candidate only.
    groups: dict[tuple[int, bool], list[int]] = {}
    for index, p in enumerate(prepared):
        if p.zero:
            bounds[index] = _zero_bound(p)
        else:
            groups.setdefault((p.big, p.use_constraint), []).append(index)

    for (big, use_constraint), indices in groups.items():
        group = [prepared[i] for i in indices]
        label = solve_class_label(big, use_constraint)
        group_start = time.perf_counter()
        results = None
        packed_problems = None
        if solve:
            template = _get_template(big, use_constraint)
            with span("sdp.instantiate", "sdp", solve_class=label, count=len(group)):
                packed_problems = template.instantiate_batch(
                    [p.scaled_choi for p in group],
                    [p.operator for p in group],
                    [p.bound_c for p in group],
                )
            with span("sdp.solve", "sdp", solve_class=label, count=len(group)):
                results = admm_solve_packed_batch(
                    packed_problems,
                    max_iterations=config.max_iterations,
                    tolerance=config.tolerance,
                )
        with span("sdp.certify", "sdp", solve_class=label, count=len(group)):
            certified = _certify_solutions_batch(group, results, packed_problems)
        for request_index, bound in zip(indices, certified):
            bounds[request_index] = bound
        group_seconds = time.perf_counter() - group_start
        if timing_events is not None:
            timing_events.append(
                {"solve_class": label, "count": len(group), "seconds": group_seconds}
            )
        obs_metrics.histogram(
            "repro_sdp_group_solve_seconds",
            "Wall-clock seconds per batched SDP template group.",
            {"solve_class": label},
        ).observe(group_seconds)
        obs_metrics.counter(
            "repro_sdp_solves_total",
            "SDP instances solved (batched), by template solve class.",
            {"solve_class": label},
        ).inc(len(group))
    return bounds  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Named wrappers
# ---------------------------------------------------------------------------

def diamond_distance(
    channel_a: QuantumChannel,
    channel_b: QuantumChannel,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Unconstrained diamond distance ``0.5 ||A - B||_diamond`` (certified)."""
    choi = channel_a.choi() - channel_b.choi()
    return constrained_diamond_norm(choi, config=config)


def rho_delta_constraint_bound(rho_local: np.ndarray, delta: float) -> float:
    """The constraint bound ``c = ||rho'||_F (||rho'||_F - delta)`` of Eq. (2)."""
    norm = frobenius_norm(rho_local)
    return float(norm * (norm - delta))


def rho_delta_diamond_norm(
    choi: np.ndarray,
    rho_local: np.ndarray,
    delta: float,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """The (ρ̂, δ)-diamond norm of a difference map given the local predicate.

    ``rho_local`` is the reduced density matrix of the approximate state on
    the qubits the map acts on; ``delta`` bounds the trace-norm distance of
    the true global state from the approximate one.
    """
    if delta < 0:
        raise SDPError("delta must be non-negative")
    bound_c = rho_delta_constraint_bound(rho_local, delta)
    return constrained_diamond_norm(
        choi,
        constraint_operator=np.asarray(rho_local, dtype=np.complex128),
        constraint_bound=bound_c,
        config=config,
    )


def q_lambda_diamond_norm(
    choi: np.ndarray,
    predicate: np.ndarray,
    degree: float,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """The (Q, λ)-diamond norm of prior work (Hung et al.), for the LQR baseline."""
    return constrained_diamond_norm(
        choi,
        constraint_operator=np.asarray(predicate, dtype=np.complex128),
        constraint_bound=float(degree),
        config=config,
    )


# ---------------------------------------------------------------------------
# Gate-level bounds with structural reductions
# ---------------------------------------------------------------------------

def _channel_acts_trivially_on(channel: QuantumChannel, qubit: int) -> QuantumChannel | None:
    """If a 2-qubit channel is ``N ⊗ id`` (or ``id ⊗ N``), return the 1-qubit N.

    ``qubit`` names the tensor factor that should carry the identity (0 or 1).
    Returns None when the channel does not factor this way.
    """
    if channel.dim_in != 4 or channel.dim_out != 4:
        return None
    active = 1 - qubit
    # Candidate single-qubit channel: feed in basis matrices on the active
    # qubit with a maximally mixed spectator, trace the spectator out.
    basis = [np.zeros((2, 2), dtype=np.complex128) for _ in range(4)]
    for idx, (i, j) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        basis[idx][i, j] = 1.0
    spectator = np.eye(2, dtype=np.complex128) / 2
    outputs = []
    for b in basis:
        joint = np.kron(b, spectator) if active == 0 else np.kron(spectator, b)
        out = channel.apply(joint)
        reduced = partial_trace_keep(out, [active])
        outputs.append(reduced)
    # Choi of the candidate (output ⊗ input, unnormalised).
    candidate_choi = np.zeros((4, 4), dtype=np.complex128)
    for idx, (i, j) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        candidate_choi += np.kron(outputs[idx], basis[idx])
    eigenvalues = np.linalg.eigvalsh((candidate_choi + candidate_choi.conj().T) / 2)
    if eigenvalues.min() < -1e-9:
        return None
    try:
        candidate = QuantumChannel.from_choi(candidate_choi, name=f"{channel.name}|q{active}")
    except Exception:  # pragma: no cover - defensive
        return None
    tensor = (
        candidate.tensor(identity_channel(1))
        if active == 0
        else identity_channel(1).tensor(candidate)
    )
    if np.allclose(tensor.choi(), channel.choi(), atol=1e-9):
        return candidate
    return None


#: Memoised tensor-factoring decisions, keyed on channel identity.  Channels
#: are immutable and noise models hand out one object per rule, so the
#: factoring test (a dozen dense 4x4 operations) runs once per distinct
#: channel instead of once per gate instance.  Weak keys keep transient
#: channels collectable.
_FACTORING_CACHE: "weakref.WeakKeyDictionary[QuantumChannel, tuple[int, QuantumChannel] | None]" = (
    weakref.WeakKeyDictionary()
)
_FACTORING_LOCK = threading.Lock()

#: Choi matrices of the identity channel, by qubit count.
_IDENTITY_CHOIS: dict[int, np.ndarray] = {}


def _identity_choi(num_qubits: int) -> np.ndarray:
    choi = _IDENTITY_CHOIS.get(num_qubits)
    if choi is None:
        choi = identity_channel(num_qubits).choi()
        _IDENTITY_CHOIS[num_qubits] = choi
    return choi


def _spectator_factoring(channel: QuantumChannel) -> tuple[int, QuantumChannel] | None:
    """``(active_qubit, reduced_1q_channel)`` if a 2-qubit channel factors.

    Mirrors the historical per-instance loop (spectator 0 tried first), but
    the decision — which depends only on the channel — is computed once per
    channel object and shared by every instance that carries it.
    """
    if channel.dim_in != 4 or channel.dim_out != 4:
        return None
    try:
        return _FACTORING_CACHE[channel]
    except KeyError:
        pass
    factoring = None
    for spectator in (0, 1):
        reduced_noise = _channel_acts_trivially_on(channel, spectator)
        if reduced_noise is not None:
            factoring = (1 - spectator, reduced_noise)
            break
    with _FACTORING_LOCK:
        return _FACTORING_CACHE.setdefault(channel, factoring)


def reduced_problem_dim(noise_channel: QuantumChannel | None) -> int:
    """Input dimension of the SDP that survives the structural reductions.

    2-qubit channels that factor as ``N ⊗ id`` (or ``id ⊗ N``) reduce to the
    1-qubit problem; everything else keeps the channel's own dimension.  The
    scheduler uses this to group solve classes of one template shape into the
    same worker chunk (0 means noiseless — no SDP at all).
    """
    if noise_channel is None:
        return 0
    if _spectator_factoring(noise_channel) is not None:
        return 2
    return noise_channel.dim_in


def gate_error_bound(
    gate_matrix: np.ndarray,
    noise_channel: QuantumChannel | None,
    rho_local: np.ndarray,
    delta: float,
    *,
    noise_after_gate: bool = True,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Certified (ρ̂, δ)-diamond-norm bound for one noisy gate application.

    Args:
        gate_matrix: the ideal gate unitary (on the gate's qubits, operand order).
        noise_channel: the local noise channel attached by the noise model
            (None means the gate is perfect and the bound is zero).
        rho_local: reduced approximate state on the gate's qubits (operand order).
        delta: accumulated approximation bound of the predicate.
        noise_after_gate: whether the noisy gate is ``N ∘ U`` (default) or ``U ∘ N``.
        config: SDP configuration.
    """
    return gate_error_bounds_batch(
        [(gate_matrix, noise_channel, rho_local, delta)],
        noise_after_gate=noise_after_gate,
        config=config,
    )[0]


def _reduced_gate_problem(
    gate_matrix: np.ndarray,
    noise_channel: QuantumChannel,
    rho_local: np.ndarray,
    *,
    noise_after_gate: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the exact structural reductions of :func:`gate_error_bound`.

    A batch of one through :func:`_reduced_gate_problems_batch`, so per-gate
    and batched reductions run the identical code.
    """
    return _reduced_gate_problems_batch(
        [(gate_matrix, noise_channel, rho_local)], noise_after_gate=noise_after_gate
    )[0]


def _reduced_gate_problems_batch(
    problems: list[tuple[np.ndarray, QuantumChannel, np.ndarray]],
    *,
    noise_after_gate: bool = True,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The exact structural reductions of :func:`gate_error_bound`, whole-stack.

    ``problems`` holds ``(gate_matrix, noise_channel, rho_local)`` triples;
    the return value is the aligned list of ``(diff_choi, sigma)`` pairs that
    define the remaining (ρ̂, δ)-diamond-norm SDPs.

    The historical per-instance Python — Choi construction, unitary
    conjugation of the predicate, and the 2-qubit trivial-spectator
    reduction — is replaced by whole-stack work:

    * the tensor-factoring decision and the difference-map Choi matrix are
      resolved once per *distinct channel* (channels are shared objects, so a
      65-gate program typically holds two);
    * uncached Choi matrices are computed with one stacked Gram product per
      same-arity group (:func:`repro.linalg.channels.choi_stack`);
    * the predicate conjugations ``U ρ U†`` run as batched matmuls per gate
      dimension (:func:`repro.linalg.channels.unitary_conjugate_stack`);
    * the spectator reductions run as one batched partial trace per kept
      qubit (:func:`repro.linalg.partial_trace.partial_trace_keep` on a
      stack).

    Every batched primitive is independent of the batch composition, so the
    per-element output is bit-identical to running the reduction alone —
    :func:`_reduced_gate_problem` is a batch of one through this same code,
    and ``tests/test_sdp_batch_reductions.py`` enforces the property across
    the reduced program library.
    """
    gates: list[np.ndarray] = []
    rhos: list[np.ndarray] = []
    for gate_matrix, noise_channel, rho_local in problems:
        gate_matrix = np.asarray(gate_matrix, dtype=np.complex128)
        dim = gate_matrix.shape[0]
        if noise_channel.dim_in != dim:
            raise SDPError(
                f"noise channel dimension {noise_channel.dim_in} does not match "
                f"gate dimension {dim}"
            )
        rho_local = np.asarray(rho_local, dtype=np.complex128)
        if rho_local.shape != (dim, dim):
            raise SDPError(
                f"local predicate of shape {rho_local.shape} does not match gate dimension {dim}"
            )
        gates.append(gate_matrix)
        rhos.append(rho_local)

    # Once per distinct channel (identity-hashed, as immutable channels are):
    # the factoring decision and the channel whose Choi matrix enters the
    # difference map.
    unique = dict.fromkeys(channel for _gate, channel, _rho in problems)
    factorings = {channel: _spectator_factoring(channel) for channel in unique}
    effective = {
        channel: (
            factorings[channel][1] if factorings[channel] is not None else channel
        )
        for channel in unique
    }
    by_arity: dict[tuple[int, int], list[QuantumChannel]] = {}
    for channel in effective.values():
        by_arity.setdefault((channel.dim_out, channel.dim_in), []).append(channel)
    for group in by_arity.values():
        choi_stack(group)  # one stacked Gram product per arity, caches filled
    diff_chois = {
        channel: reduced.choi() - _identity_choi(reduced.num_qubits)
        for channel, reduced in effective.items()
    }

    # Unitary factoring: || N∘U - U ||_(rho,delta) = || N - id ||_(U rho U†, delta),
    # and || U∘N - U ||_(rho,delta) = || N - id ||_(rho, delta).
    sigmas: list[np.ndarray]
    if noise_after_gate:
        sigmas = [None] * len(problems)  # type: ignore[list-item]
        by_dim: dict[int, list[int]] = {}
        for index, gate in enumerate(gates):
            by_dim.setdefault(gate.shape[0], []).append(index)
        for indices in by_dim.values():
            conjugated = unitary_conjugate_stack(
                np.stack([gates[i] for i in indices]),
                np.stack([rhos[i] for i in indices]),
            )
            for row, index in enumerate(indices):
                sigmas[index] = conjugated[row]
    else:
        sigmas = list(rhos)

    # Tensor-factor reduction for 2-qubit gates with single-qubit noise: one
    # batched partial trace per kept qubit.
    by_active: dict[int, list[int]] = {}
    for index, (_gate, channel, _rho) in enumerate(problems):
        factoring = factorings[channel]
        if factoring is not None:
            by_active.setdefault(factoring[0], []).append(index)
    for active, indices in by_active.items():
        reduced = partial_trace_keep(
            np.stack([sigmas[i] for i in indices]), [active]
        )
        for row, index in enumerate(indices):
            sigmas[index] = reduced[row]

    return [
        (diff_chois[channel], sigmas[index])
        for index, (_gate, channel, _rho) in enumerate(problems)
    ]


def gate_error_bounds_batch(
    instances: list[tuple[np.ndarray, QuantumChannel | None, np.ndarray, float]],
    *,
    noise_after_gate: bool = True,
    config: SDPConfig | None = None,
    timing_events: list | None = None,
) -> list[DiamondNormBound]:
    """Certified bounds for many noisy gate applications, solved in lock-step.

    ``instances`` holds ``(gate_matrix, noise_channel, rho_local, delta)``
    tuples.  The structural reductions run as one whole-stack pass
    (:func:`_reduced_gate_problems_batch`); the surviving SDPs are dispatched
    through :func:`constrained_diamond_norms_batch` so that same-shaped
    problems share one batched ADMM run.  Used by the program-level bound
    scheduler (:mod:`repro.core.scheduler`); :func:`gate_error_bound` is a
    batch of one through this same code.
    """
    config = config or SDPConfig()
    bounds: list[DiamondNormBound | None] = [None] * len(instances)
    noisy: list[tuple[int, float]] = []
    reduction_inputs: list[tuple[np.ndarray, QuantumChannel, np.ndarray]] = []
    for index, (gate_matrix, noise_channel, rho_local, delta) in enumerate(instances):
        if noise_channel is None:
            zero_cert = DualCertificate(0.0, np.zeros((1, 1)), 0.0, None, 0.0)
            bounds[index] = DiamondNormBound(0.0, zero_cert, 0.0, method="noiseless")
            continue
        if delta < 0:
            raise SDPError("delta must be non-negative")
        noisy.append((index, float(delta)))
        reduction_inputs.append((gate_matrix, noise_channel, rho_local))
    with span("sdp.reduce", "sdp", count=len(reduction_inputs)):
        reduced = _reduced_gate_problems_batch(
            reduction_inputs, noise_after_gate=noise_after_gate
        )
    requests: list[tuple[np.ndarray, np.ndarray | None, float]] = []
    request_positions: list[int] = []
    for (index, delta), (diff_choi, sigma) in zip(noisy, reduced):
        requests.append((diff_choi, sigma, rho_delta_constraint_bound(sigma, delta)))
        request_positions.append(index)
    solved = constrained_diamond_norms_batch(
        requests, config=config, timing_events=timing_events
    )
    for position, bound in zip(request_positions, solved):
        bounds[position] = bound
    return bounds  # type: ignore[return-value]


class GateBoundCache:
    """Memoisation of gate error bounds keyed on (noise, gate, predicate).

    The predicate part of the key is quantised: the local density matrix is
    rounded to ``decimals`` and δ is *increased* by the trace-norm rounding
    error and then rounded up to the grid.  The cached bound is therefore
    computed for a weaker predicate and remains sound for the original one
    (Weaken rule).

    Two further lookup layers sit behind the exact map:

    * *predicate dominance* — a bound certified for the same rounded ρ̂ but a
      *larger* δ was computed under a weaker constraint (smaller ``c`` in
      Eq. (2)), so it soundly upper-bounds the stronger request, again by the
      Weaken rule.  Dominance answers are counted in ``dominance_hits``;
    * an optional *persistent on-disk store* (``store_path``), keyed by a
      content hash of the quantised key, so repeated experiment runs start
      warm.  Loaded entries carry their full dual certificate and are
      re-verified with :func:`repro.sdp.certificates.verify_certificate`
      before being trusted.

    With ``max_entries`` set the in-memory map is **size-capped**: every hit
    refreshes its entry's recency, and inserting past the cap compacts the
    least-recently-used entries away (``evictions`` counts them).  Compaction
    evicts the LRU entry's whole predicate group (every δ of the same rounded
    ρ̂), so a surviving weaker-δ sibling can never shadow an evicted exact
    entry through the dominance layer.  Eviction therefore only forgets
    memoised work: a later request recomputes its bound exactly (or reloads
    it from the persistent store) — in exact arithmetic a capped cache never
    reports a *looser* bound than the unbounded one, and every answer stays
    a certified sound bound.
    """

    def __init__(
        self,
        decimals: int = 6,
        *,
        dominance: bool = True,
        store_path: str | None = None,
        max_entries: int | None = None,
    ):
        self.decimals = int(decimals)
        self.dominance = bool(dominance)
        self.store_path = store_path
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = int(max_entries) if max_entries is not None else None
        # Insertion order doubles as recency order: hits re-insert their key
        # at the end (dicts preserve order), so compaction pops the front.
        self._store: dict[tuple, DiamondNormBound] = {}
        # partial key (everything but δ) -> sorted list of (δ, full key)
        self._by_predicate: dict[tuple, list[tuple[float, tuple]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.dominance_hits = 0
        self.persistent_hits = 0
        self.evictions = 0
        if store_path is not None:
            os.makedirs(store_path, exist_ok=True)

    # -- LRU bookkeeping -----------------------------------------------------
    def _touch(self, key: tuple) -> None:
        """Move a hit to the recency tail (no-op when the cache is unbounded)."""
        if self.max_entries is None:
            return
        with self._lock:
            bound = self._store.pop(key, None)
            if bound is not None:
                self._store[key] = bound

    def _compact(self) -> None:
        """Evict LRU entries down to ``max_entries``.  Callers hold ``self._lock``.

        The LRU victim's whole predicate group goes with it: leaving a
        weaker-δ sibling behind would let the dominance layer answer the
        evicted key's next request with that looser (still sound) bound
        instead of the exact recompute an unbounded cache would have served.
        """
        if self.max_entries is None:
            return
        while len(self._store) > self.max_entries:
            oldest = next(iter(self._store))
            partial = oldest[:-1]
            group = [key for _delta, key in self._by_predicate.get(partial, ())]
            for key in group or [oldest]:
                if self._store.pop(key, None) is not None:
                    self.evictions += 1
            self._by_predicate.pop(partial, None)

    def _quantise(
        self, rho_local: np.ndarray, delta: float
    ) -> tuple[np.ndarray, float, bytes, float]:
        rounded = np.round(rho_local, self.decimals)
        rounded = (rounded + rounded.conj().T) / 2
        rounding_error = trace_norm(rho_local - rounded)
        step = 10.0 ** (-self.decimals)
        effective_delta = delta + rounding_error
        effective_delta = np.ceil(effective_delta / step) * step
        return rounded, float(effective_delta), rounded.tobytes(), float(effective_delta)

    def quantise_key(
        self, key_parts: tuple, rho_local: np.ndarray, delta: float
    ) -> tuple[tuple, np.ndarray, float]:
        """The full cache key plus the weakened (ρ̂, δ) it stands for."""
        rounded_rho, effective_delta, rho_bytes, delta_key = self._quantise(
            rho_local, delta
        )
        return key_parts + (rho_bytes, delta_key), rounded_rho, effective_delta

    def bounds_snapshot(self) -> list[DiamondNormBound]:
        """Every cached bound, in insertion (recency) order.

        Used by the engine to harvest the dual certificates of a finished
        job for the whole-outcome store; the returned list is a copy, so
        callers can iterate without holding the cache lock.
        """
        with self._lock:
            return list(self._store.values())

    # -- lookup layers -------------------------------------------------------
    def peek(
        self,
        key: tuple,
        fingerprint: str | None = None,
        expected_problem=None,
    ) -> DiamondNormBound | None:
        """Exact / persistent / dominance lookup for the scheduler's pre-pass.

        Exact and dominance answers leave the hit counters untouched — the
        replay's :meth:`lookup_or_compute` records those, so counting here
        as well would double every statistic.  The persistent layer is only
        consulted when the caller supplies both the problem ``fingerprint``
        that disk entries are keyed by and the ``expected_problem`` callable
        used to validate them; disk hits *are* counted here, because loading
        promotes the entry into memory and the replay can then only see a
        plain hit.

        Order matters: the persistent *exact* entry is tried before the
        in-memory dominance layer.  A dominance answer (same rounded ρ̂,
        larger δ) is sound but looser than the exact solve, so consulting it
        first would make a warm-cache run report (slightly) different bounds
        than the cold run that filled the store — exact disk entries keep
        warm re-runs bit-identical.
        """
        cached = self._store.get(key)
        if cached is not None:
            self._touch(key)
            return cached
        if fingerprint is not None and expected_problem is not None:
            # Persistent hits ARE counted here: loading promotes the entry
            # into the in-memory map, so the replay's lookup_or_compute can
            # only ever record it as a plain hit — without counting now,
            # persistent_hits would always read 0 under the scheduled path.
            cached = self._persistent_lookup(key, fingerprint, expected_problem)
            if cached is not None:
                return cached
        return self._dominance_lookup(key, count=False)

    def _dominance_lookup(
        self, key: tuple, *, count: bool = True
    ) -> DiamondNormBound | None:
        """A stored bound for the same rounded ρ̂ and a larger (weaker) δ."""
        if not self.dominance:
            return None
        partial, delta_key = key[:-1], float(key[-1])
        entries = self._by_predicate.get(partial)
        if not entries:
            return None
        # Entries are sorted by δ; the first entry with δ' >= δ is the
        # tightest sound answer (larger δ' ⇒ weaker predicate ⇒ looser bound).
        index = bisect.bisect_left(entries, (delta_key, ()))
        if index < len(entries):
            stored_delta, stored_key = entries[index]
            if stored_delta >= delta_key:
                found = self._store.get(stored_key)
                if found is not None:
                    self._touch(stored_key)
                    if count:
                        self.dominance_hits += 1
                    return found
        return None

    @staticmethod
    def problem_fingerprint(
        gate_matrix: np.ndarray,
        noise_channel: QuantumChannel,
        noise_after_gate: bool,
    ) -> str:
        """Content digest of the actual SDP problem data.

        The in-memory key identifies the channel by *name*, which is
        unambiguous within one analyzer (one noise model, deterministic
        ``channel_for``) but not across processes: differently parametrised
        channels can share a name.  The persistent store therefore binds the
        gate matrix, the channel's Choi matrix, and the noise convention into
        its key, so a disk entry can never answer for a different problem.
        """
        digest = hashlib.sha256()
        digest.update(
            np.ascontiguousarray(
                np.asarray(gate_matrix, dtype=np.complex128)
            ).tobytes()
        )
        digest.update(
            np.ascontiguousarray(
                np.asarray(noise_channel.choi(), dtype=np.complex128)
            ).tobytes()
        )
        digest.update(b"1" if noise_after_gate else b"0")
        return digest.hexdigest()

    def _hash_key(self, key: tuple, fingerprint: str) -> str:
        return hashlib.sha256(
            repr(key).encode() + fingerprint.encode()
        ).hexdigest()

    @staticmethod
    def expected_problem(
        gate_matrix: np.ndarray,
        noise_channel: QuantumChannel,
        rho_rounded: np.ndarray,
        delta_effective: float,
        *,
        noise_after_gate: bool,
    ):
        """Deferred recomputation of the SDP a request actually defines.

        Returns a zero-argument callable (the reductions only run if a disk
        entry exists) yielding the symmetrised difference-map Choi matrix,
        the predicate operator, and the constraint bound — the ground truth
        persisted entries are validated against.
        """

        def compute():
            diff_choi, sigma = _reduced_gate_problem(
                gate_matrix,
                noise_channel,
                rho_rounded,
                noise_after_gate=noise_after_gate,
            )
            diff_choi = (diff_choi + diff_choi.conj().T) / 2
            return diff_choi, sigma, rho_delta_constraint_bound(sigma, delta_effective)

        return compute

    def _persistent_lookup(
        self,
        key: tuple,
        fingerprint: str,
        expected_problem,
        *,
        count: bool = True,
    ) -> DiamondNormBound | None:
        """Load and validate a disk entry.

        ``expected_problem`` is a zero-argument callable returning the
        (choi, constraint_operator, constraint_bound) the *request* defines.
        Never trust the disk: the stored arrays must match the recomputed
        problem and the certificate must re-verify against the recomputed
        Choi matrix — an entry that is merely internally consistent (e.g.
        tampered choi + matching tampered certificate) is rejected.
        """
        if self.store_path is None:
            return None
        path = os.path.join(self.store_path, self._hash_key(key, fingerprint) + ".npz")
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if str(data["key_repr"]) != repr(key):
                    return None
                if str(data["fingerprint"]) != fingerprint:
                    return None
                operator = data["constraint_operator"]
                certificate = DualCertificate(
                    value=float(data["value"]),
                    z=data["z"],
                    y=float(data["y"]),
                    constraint_operator=None if operator.size == 0 else operator,
                    constraint_bound=float(data["constraint_bound"]),
                )
                choi = data["choi"]
                # The reported value is reconstructed from the certificate
                # (exactly as _certify_solutions_batch does), never read from
                # disk: the certificate is what gets re-verified below, so a
                # tampered standalone value field could otherwise bypass
                # validation.
                bound = DiamondNormBound(
                    value=max(0.0, certificate.value),
                    certificate=certificate,
                    primal_estimate=float(data["primal_estimate"]),
                    method=str(data["method"]),
                    choi=None if choi.size == 0 else choi,
                )
        except Exception:  # corrupt zip / zlib / shape errors: recompute
            return None
        expected_choi, expected_operator, expected_bound_c = expected_problem()
        use_constraint = expected_operator is not None and expected_bound_c > 0.0
        if bound.choi is None or bound.choi.shape != expected_choi.shape:
            return None
        if not np.allclose(bound.choi, expected_choi, atol=1e-10):
            return None
        stored_operator = certificate.constraint_operator
        if use_constraint:
            if stored_operator is None or stored_operator.shape != expected_operator.shape:
                return None
            if not np.allclose(stored_operator, expected_operator, atol=1e-10):
                return None
            if abs(certificate.constraint_bound - expected_bound_c) > 1e-10:
                return None
        elif stored_operator is not None and certificate.y != 0.0:
            return None
        if not verify_certificate(certificate, expected_choi):
            return None
        with self._lock:
            self._store[key] = bound
            self._index_key(key)
            self._compact()
        if count:
            self.persistent_hits += 1
        return bound

    def _persistent_save(
        self, key: tuple, bound: DiamondNormBound, fingerprint: str | None
    ) -> None:
        if self.store_path is None or bound.choi is None or fingerprint is None:
            return
        operator = bound.certificate.constraint_operator
        path = os.path.join(self.store_path, self._hash_key(key, fingerprint) + ".npz")
        # Unique tmp name: concurrent processes sharing the store directory
        # must not interleave writes before the atomic publish below.
        tmp_path = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            np.savez(
                tmp_path,
                key_repr=np.str_(repr(key)),
                fingerprint=np.str_(fingerprint),
                value=bound.certificate.value,
                z=bound.certificate.z,
                y=bound.certificate.y,
                constraint_operator=(
                    operator if operator is not None else np.empty(0)
                ),
                constraint_bound=bound.certificate.constraint_bound,
                primal_estimate=bound.primal_estimate,
                method=np.str_(bound.method),
                choi=bound.choi,
            )
            os.replace(tmp_path + ".npz", path)
        except OSError:  # pragma: no cover - disk full / permissions
            try:
                os.unlink(tmp_path + ".npz")
            except OSError:
                pass

    # -- mutation ------------------------------------------------------------
    def _index_key(self, key: tuple) -> None:
        partial, delta_key = key[:-1], float(key[-1])
        entries = self._by_predicate.setdefault(partial, [])
        item = (delta_key, key)
        index = bisect.bisect_left(entries, item)
        if index >= len(entries) or entries[index] != item:
            entries.insert(index, item)

    def insert(
        self,
        key: tuple,
        bound: DiamondNormBound,
        *,
        count_as_solve: bool = True,
        fingerprint: str | None = None,
    ) -> None:
        """Record a freshly computed bound (used by the bound scheduler)."""
        with self._lock:
            self._store[key] = bound
            self._index_key(key)
            self._compact()
            if count_as_solve:
                self.misses += 1
        self._persistent_save(key, bound, fingerprint)

    def lookup_or_compute(
        self,
        key_parts: tuple,
        gate_matrix: np.ndarray,
        noise_channel: QuantumChannel | None,
        rho_local: np.ndarray,
        delta: float,
        *,
        noise_after_gate: bool = True,
        config: SDPConfig | None = None,
    ) -> DiamondNormBound:
        """Return a sound bound, computing and caching it if necessary.

        ``key_parts`` should identify the gate and noise channel (e.g. the
        gate's structural key and the noise model's rule identity).
        """
        rounded_rho, effective_delta, rho_bytes, delta_key = self._quantise(rho_local, delta)
        key = key_parts + (rho_bytes, delta_key)
        cached = self._store.get(key)
        if cached is not None:
            self._touch(key)
            self.hits += 1
            return cached
        # Persistent exact entries are consulted before dominance: a
        # dominance answer is sound but looser, and letting it shadow the
        # exact disk entry would make warm-cache runs report different
        # bounds than the cold run that filled the store (see peek()).
        fingerprint = None
        if self.store_path is not None and noise_channel is not None:
            fingerprint = self.problem_fingerprint(
                gate_matrix, noise_channel, noise_after_gate
            )
            cached = self._persistent_lookup(
                key,
                fingerprint,
                self.expected_problem(
                    gate_matrix,
                    noise_channel,
                    rounded_rho,
                    effective_delta,
                    noise_after_gate=noise_after_gate,
                ),
            )
            if cached is not None:
                self.hits += 1
                return cached
        cached = self._dominance_lookup(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        bound = gate_error_bound(
            gate_matrix,
            noise_channel,
            rounded_rho,
            effective_delta,
            noise_after_gate=noise_after_gate,
            config=config,
        )
        with self._lock:
            self._store[key] = bound
            self._index_key(key)
            self._compact()
        self._persistent_save(key, bound, fingerprint)
        return bound

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._by_predicate.clear()
            self.hits = 0
            self.misses = 0
            self.dominance_hits = 0
            self.persistent_hits = 0
            self.evictions = 0
