"""Diamond-norm computations: unconstrained, (Q, λ)- and (ρ̂, δ)-constrained.

All quantities follow the *diamond distance* convention of Eq. (2): the value
reported for a pair of channels (or for a Hermitian-preserving difference map
Φ) is ``max_rho 0.5 || (Phi ⊗ I)(rho) ||_1`` subject to the input constraint.
For the paper's bit-flip channel with probability p this distance from the
identity is exactly p, so the worst-case bound of a circuit is
``num_gates * p`` — matching the last column of Table 2.

Soundness: every value returned by this module is a *certified dual bound*
(see :mod:`repro.sdp.certificates`); the ADMM solver only influences how tight
it is.  Two candidate duals are always tried — the analytic ``J₊`` candidate
and the ADMM candidate — and the smaller certified value wins.

The entry point used by the error logic is :func:`gate_error_bound`, which
additionally exploits two exact reductions:

* a unitary factoring step — for a noisy gate ``N ∘ U`` the difference from
  ``U`` equals ``(N - id) ∘ U``, so the constrained norm equals that of
  ``N - id`` with the predicate pushed through ``U``;
* a tensor-factor reduction — when the noise acts non-trivially on only one
  qubit of a 2-qubit gate (as in the paper's model), the SDP is reduced to
  the single-qubit problem with the correspondingly reduced predicate, which
  is an upper bound by the data-processing inequality.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import SDPConfig
from ..errors import SDPError
from ..linalg.channels import (
    QuantumChannel,
    choi_output_trace_map,
    identity_channel,
    unitary_channel,
)
from ..linalg.decompositions import positive_part
from ..linalg.hermitian import hermitian_basis, hunvec
from ..linalg.norms import frobenius_norm, trace_norm
from ..linalg.partial_trace import partial_trace_keep
from .admm import ADMMSolver
from .certificates import DualCertificate, certified_value, repair_dual_candidate
from .problem import BlockVector, SDPProblem

__all__ = [
    "DiamondNormBound",
    "build_constrained_diamond_sdp",
    "constrained_diamond_norm",
    "diamond_distance",
    "rho_delta_diamond_norm",
    "q_lambda_diamond_norm",
    "rho_delta_constraint_bound",
    "gate_error_bound",
    "GateBoundCache",
]


@dataclasses.dataclass(frozen=True)
class DiamondNormBound:
    """A certified upper bound on a (possibly constrained) diamond distance.

    Attributes:
        value: the certified upper bound.
        certificate: the verified dual-feasible point establishing the bound.
        primal_estimate: the (approximate, not certified) primal value from
            ADMM; ``value - primal_estimate`` estimates the slack.
        method: ``"certified"`` (ADMM + certificate) or ``"fast"``
            (analytic J₊ candidate only).
        iterations: ADMM iterations spent (0 in fast mode).
        converged: whether ADMM hit its tolerance.
    """

    value: float
    certificate: DualCertificate
    primal_estimate: float
    method: str
    iterations: int = 0
    converged: bool = True
    choi: np.ndarray | None = None

    @property
    def estimated_gap(self) -> float:
        return max(0.0, self.value - self.primal_estimate)


# ---------------------------------------------------------------------------
# SDP construction (Theorem 6.1 / Eq. 2)
# ---------------------------------------------------------------------------

def build_constrained_diamond_sdp(
    choi: np.ndarray,
    constraint_operator: np.ndarray | None,
    constraint_bound: float,
) -> SDPProblem:
    """Assemble Eq. (2) in the standard primal form used by the ADMM solver.

    Variable blocks: ``W`` (dim_out*dim_in square), the slack ``S`` of the
    operator inequality ``I ⊗ rho >= W``, ``rho`` (dim_in square), and — when
    the linear constraint is active — a scalar slack ``t >= 0`` for
    ``tr(Q rho) - t = c``.  The objective is ``min <-J, W>`` so the SDP's
    optimal value is the negative of the diamond distance.
    """
    choi = np.asarray(choi, dtype=np.complex128)
    big = choi.shape[0]
    dim = int(round(np.sqrt(big)))
    if dim * dim != big:
        raise SDPError(f"Choi matrix dimension {big} is not a perfect square")

    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    dims = [big, big, dim] + ([1] if use_constraint else [])

    objective_blocks = [
        -choi,
        np.zeros((big, big), dtype=np.complex128),
        np.zeros((dim, dim), dtype=np.complex128),
    ]
    if use_constraint:
        objective_blocks.append(np.zeros((1, 1), dtype=np.complex128))
    problem = SDPProblem(dims, BlockVector(objective_blocks))

    zero_big = np.zeros((big, big), dtype=np.complex128)
    zero_small = np.zeros((dim, dim), dtype=np.complex128)
    zero_scalar = np.zeros((1, 1), dtype=np.complex128)

    # (E1)  <B_m, I ⊗ rho> - <B_m, W> - <B_m, S> = 0 for a Hermitian basis B_m.
    # Ordered like hvec so the dual multipliers reassemble into Z directly.
    for index, basis_element in enumerate(hermitian_basis(big)):
        reduced = choi_output_trace_map(basis_element)
        blocks = [-basis_element, -basis_element, reduced]
        if use_constraint:
            blocks.append(zero_scalar)
        problem.add_constraint(blocks, 0.0, label=f"coupling[{index}]")

    # (E2)  tr(rho) = 1.
    blocks = [zero_big, zero_big, np.eye(dim, dtype=np.complex128)]
    if use_constraint:
        blocks.append(zero_scalar)
    problem.add_constraint(blocks, 1.0, label="trace")

    # (E3)  tr(Q rho) - t = c.
    if use_constraint:
        operator = np.asarray(constraint_operator, dtype=np.complex128)
        if operator.shape != (dim, dim):
            raise SDPError(
                f"constraint operator shape {operator.shape} does not match input dim {dim}"
            )
        problem.add_constraint(
            [zero_big, zero_big, operator, -np.eye(1, dtype=np.complex128)],
            float(constraint_bound),
            label="predicate",
        )
    return problem


# ---------------------------------------------------------------------------
# Core solve-and-certify routine
# ---------------------------------------------------------------------------

def constrained_diamond_norm(
    choi: np.ndarray,
    *,
    constraint_operator: np.ndarray | None = None,
    constraint_bound: float = 0.0,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Certified upper bound on a constrained diamond distance.

    Args:
        choi: Choi matrix of the Hermitian-preserving difference map Φ
            (output ⊗ input ordering).
        constraint_operator: the operator Q of ``tr(Q rho) >= c`` (None for
            the unconstrained diamond distance).
        constraint_bound: the bound c; a non-positive value makes the
            constraint vacuous and the computation unconstrained.
        config: SDP engine configuration (mode, tolerances, iteration caps).
    """
    config = config or SDPConfig()
    config.validate()
    choi = np.asarray(choi, dtype=np.complex128)
    choi = (choi + choi.conj().T) / 2

    scale = trace_norm(choi)
    if scale <= 1e-300:
        zero_cert = DualCertificate(
            0.0, np.zeros_like(choi), 0.0, None, float(constraint_bound)
        )
        return DiamondNormBound(0.0, zero_cert, 0.0, method="exact-zero")

    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    operator = (
        np.asarray(constraint_operator, dtype=np.complex128) if use_constraint else None
    )
    bound_c = float(constraint_bound) if use_constraint else 0.0

    scaled_choi = choi / scale

    # Candidate 1: the analytic J₊ dual point (always feasible, no solve).
    candidates: list[np.ndarray] = [positive_part(scaled_choi)]

    primal_estimate = 0.0
    iterations = 0
    converged = True
    method = "fast"

    if config.mode in ("certified", "auto"):
        problem = build_constrained_diamond_sdp(scaled_choi, operator, bound_c)
        solver = ADMMSolver(
            problem,
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
        )
        result = solver.solve()
        iterations = result.iterations
        converged = result.converged
        method = "certified"
        # Primal estimate: tr(J W) with W the first block (objective was -J).
        primal_estimate = -result.primal_objective * scale
        # Dual multipliers of the coupling constraints reassemble into Z; the
        # dual slack blocks give two more candidates (S_W = Z - J, S_S = Z).
        big = scaled_choi.shape[0]
        candidates.append(hunvec(result.y[: big * big], big))
        candidates.append(result.s.blocks[0] + scaled_choi)
        candidates.append(result.s.blocks[1])

    y_hint = None
    if method == "certified" and use_constraint:
        # The multiplier of the predicate constraint seeds the 1-D dual search.
        y_hint = abs(float(result.y[-1]))
    best: DualCertificate | None = None
    for candidate in candidates:
        repaired = repair_dual_candidate(candidate, scaled_choi)
        certificate = certified_value(
            repaired,
            scaled_choi,
            constraint_operator=operator,
            constraint_bound=bound_c,
            y_hint=y_hint,
        )
        if best is None or certificate.value < best.value:
            best = certificate
    assert best is not None

    # Undo the scaling: multiplying (Z, y) by `scale` keeps feasibility for the
    # original Choi matrix and scales the dual objective linearly.
    final = DualCertificate(
        value=best.value * scale,
        z=best.z * scale,
        y=best.y * scale,
        constraint_operator=best.constraint_operator,
        constraint_bound=best.constraint_bound,
    )
    value = max(0.0, final.value)
    return DiamondNormBound(
        value=value,
        certificate=final,
        primal_estimate=max(0.0, primal_estimate),
        method=method,
        iterations=iterations,
        converged=converged,
        choi=choi,
    )


# ---------------------------------------------------------------------------
# Named wrappers
# ---------------------------------------------------------------------------

def diamond_distance(
    channel_a: QuantumChannel,
    channel_b: QuantumChannel,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Unconstrained diamond distance ``0.5 ||A - B||_diamond`` (certified)."""
    choi = channel_a.choi() - channel_b.choi()
    return constrained_diamond_norm(choi, config=config)


def rho_delta_constraint_bound(rho_local: np.ndarray, delta: float) -> float:
    """The constraint bound ``c = ||rho'||_F (||rho'||_F - delta)`` of Eq. (2)."""
    norm = frobenius_norm(rho_local)
    return float(norm * (norm - delta))


def rho_delta_diamond_norm(
    choi: np.ndarray,
    rho_local: np.ndarray,
    delta: float,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """The (ρ̂, δ)-diamond norm of a difference map given the local predicate.

    ``rho_local`` is the reduced density matrix of the approximate state on
    the qubits the map acts on; ``delta`` bounds the trace-norm distance of
    the true global state from the approximate one.
    """
    if delta < 0:
        raise SDPError("delta must be non-negative")
    bound_c = rho_delta_constraint_bound(rho_local, delta)
    return constrained_diamond_norm(
        choi,
        constraint_operator=np.asarray(rho_local, dtype=np.complex128),
        constraint_bound=bound_c,
        config=config,
    )


def q_lambda_diamond_norm(
    choi: np.ndarray,
    predicate: np.ndarray,
    degree: float,
    *,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """The (Q, λ)-diamond norm of prior work (Hung et al.), for the LQR baseline."""
    return constrained_diamond_norm(
        choi,
        constraint_operator=np.asarray(predicate, dtype=np.complex128),
        constraint_bound=float(degree),
        config=config,
    )


# ---------------------------------------------------------------------------
# Gate-level bounds with structural reductions
# ---------------------------------------------------------------------------

def _channel_acts_trivially_on(channel: QuantumChannel, qubit: int) -> QuantumChannel | None:
    """If a 2-qubit channel is ``N ⊗ id`` (or ``id ⊗ N``), return the 1-qubit N.

    ``qubit`` names the tensor factor that should carry the identity (0 or 1).
    Returns None when the channel does not factor this way.
    """
    if channel.dim_in != 4 or channel.dim_out != 4:
        return None
    active = 1 - qubit
    # Candidate single-qubit channel: feed in basis matrices on the active
    # qubit with a maximally mixed spectator, trace the spectator out.
    basis = [np.zeros((2, 2), dtype=np.complex128) for _ in range(4)]
    for idx, (i, j) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        basis[idx][i, j] = 1.0
    spectator = np.eye(2, dtype=np.complex128) / 2
    outputs = []
    for b in basis:
        joint = np.kron(b, spectator) if active == 0 else np.kron(spectator, b)
        out = channel.apply(joint)
        reduced = partial_trace_keep(out, [active])
        outputs.append(reduced)
    # Choi of the candidate (output ⊗ input, unnormalised).
    candidate_choi = np.zeros((4, 4), dtype=np.complex128)
    for idx, (i, j) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        candidate_choi += np.kron(outputs[idx], basis[idx])
    eigenvalues = np.linalg.eigvalsh((candidate_choi + candidate_choi.conj().T) / 2)
    if eigenvalues.min() < -1e-9:
        return None
    try:
        candidate = QuantumChannel.from_choi(candidate_choi, name=f"{channel.name}|q{active}")
    except Exception:  # pragma: no cover - defensive
        return None
    tensor = (
        candidate.tensor(identity_channel(1))
        if active == 0
        else identity_channel(1).tensor(candidate)
    )
    if np.allclose(tensor.choi(), channel.choi(), atol=1e-9):
        return candidate
    return None


def gate_error_bound(
    gate_matrix: np.ndarray,
    noise_channel: QuantumChannel | None,
    rho_local: np.ndarray,
    delta: float,
    *,
    noise_after_gate: bool = True,
    config: SDPConfig | None = None,
) -> DiamondNormBound:
    """Certified (ρ̂, δ)-diamond-norm bound for one noisy gate application.

    Args:
        gate_matrix: the ideal gate unitary (on the gate's qubits, operand order).
        noise_channel: the local noise channel attached by the noise model
            (None means the gate is perfect and the bound is zero).
        rho_local: reduced approximate state on the gate's qubits (operand order).
        delta: accumulated approximation bound of the predicate.
        noise_after_gate: whether the noisy gate is ``N ∘ U`` (default) or ``U ∘ N``.
        config: SDP configuration.
    """
    config = config or SDPConfig()
    if noise_channel is None:
        zero_cert = DualCertificate(0.0, np.zeros((1, 1)), 0.0, None, 0.0)
        return DiamondNormBound(0.0, zero_cert, 0.0, method="noiseless")

    gate_matrix = np.asarray(gate_matrix, dtype=np.complex128)
    dim = gate_matrix.shape[0]
    if noise_channel.dim_in != dim:
        raise SDPError(
            f"noise channel dimension {noise_channel.dim_in} does not match gate dimension {dim}"
        )
    rho_local = np.asarray(rho_local, dtype=np.complex128)
    if rho_local.shape != (dim, dim):
        raise SDPError(
            f"local predicate of shape {rho_local.shape} does not match gate dimension {dim}"
        )

    # Unitary factoring: || N∘U - U ||_(rho,delta) = || N - id ||_(U rho U†, delta),
    # and || U∘N - U ||_(rho,delta) = || N - id ||_(rho, delta).
    sigma = gate_matrix @ rho_local @ gate_matrix.conj().T if noise_after_gate else rho_local
    difference_channel = noise_channel
    diff_choi = difference_channel.choi() - identity_channel(
        difference_channel.num_qubits
    ).choi()

    # Tensor-factor reduction for 2-qubit gates with single-qubit noise.
    if dim == 4:
        for spectator in (0, 1):
            reduced_noise = _channel_acts_trivially_on(noise_channel, spectator)
            if reduced_noise is not None:
                active = 1 - spectator
                sigma = partial_trace_keep(sigma, [active])
                diff_choi = reduced_noise.choi() - identity_channel(1).choi()
                break

    return rho_delta_diamond_norm(diff_choi, sigma, delta, config=config)


class GateBoundCache:
    """Memoisation of gate error bounds keyed on (noise, gate, predicate).

    The predicate part of the key is quantised: the local density matrix is
    rounded to ``decimals`` and δ is *increased* by the trace-norm rounding
    error and then rounded up to the grid.  The cached bound is therefore
    computed for a weaker predicate and remains sound for the original one
    (Weaken rule).
    """

    def __init__(self, decimals: int = 6):
        self.decimals = int(decimals)
        self._store: dict[tuple, DiamondNormBound] = {}
        self.hits = 0
        self.misses = 0

    def _quantise(
        self, rho_local: np.ndarray, delta: float
    ) -> tuple[np.ndarray, float, bytes, float]:
        rounded = np.round(rho_local, self.decimals)
        rounded = (rounded + rounded.conj().T) / 2
        rounding_error = trace_norm(rho_local - rounded)
        step = 10.0 ** (-self.decimals)
        effective_delta = delta + rounding_error
        effective_delta = np.ceil(effective_delta / step) * step
        return rounded, float(effective_delta), rounded.tobytes(), float(effective_delta)

    def lookup_or_compute(
        self,
        key_parts: tuple,
        gate_matrix: np.ndarray,
        noise_channel: QuantumChannel | None,
        rho_local: np.ndarray,
        delta: float,
        *,
        noise_after_gate: bool = True,
        config: SDPConfig | None = None,
    ) -> DiamondNormBound:
        """Return a sound bound, computing and caching it if necessary.

        ``key_parts`` should identify the gate and noise channel (e.g. the
        gate's structural key and the noise model's rule identity).
        """
        rounded_rho, effective_delta, rho_bytes, delta_key = self._quantise(rho_local, delta)
        key = key_parts + (rho_bytes, delta_key)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        bound = gate_error_bound(
            gate_matrix,
            noise_channel,
            rounded_rho,
            effective_delta,
            noise_after_gate=noise_after_gate,
            config=config,
        )
        self._store[key] = bound
        return bound

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
