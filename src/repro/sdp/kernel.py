"""Vectorized packed-real kernel for the block-diagonal SDP engine.

The ADMM solver of :mod:`repro.sdp.admm` spends essentially all of its time
in two structural operations per iteration:

* packing/unpacking block-diagonal Hermitian variables to flat real vectors
  (previously one Python-level :func:`repro.linalg.hermitian.hvec` /
  ``hunvec`` call per block per iteration), and
* projecting each block onto the PSD cone (previously one ``eigh`` per block
  per iteration).

This module precomputes, per block *structure* (the tuple of block side
lengths), the index maps needed to do both operations with whole-array numpy
work:

* :class:`BlockLayout` — gather/scatter maps between the flat packed-real
  vector and stacked ``(k, d, d)`` complex arrays, one stack per distinct
  block size, so same-sized blocks are packed, unpacked and eigendecomposed
  together in single batched calls;
* :func:`BlockLayout.project_psd` — the fused flat→blocks→eigh→clip→flat
  PSD projection used inside the ADMM iteration (one batched ``eigh`` per
  distinct block size, scalars clipped directly on the flat vector);
* :class:`PackedSDP` / :func:`admm_solve_packed` — the allocation-light ADMM
  iteration core operating purely on flat real vectors, shared by the
  object-level :class:`repro.sdp.admm.ADMMSolver` and the template fast path
  of :mod:`repro.sdp.diamond`.

Layouts are cached per dims-tuple (:func:`get_layout`), so the maps are built
once per problem shape for the lifetime of the process.

The packed-real embedding is the same isometry as ``hvec``: for each block,
``d`` real diagonal entries, then ``d(d-1)/2`` real parts and ``d(d-1)/2``
imaginary parts of the strict upper triangle scaled by ``sqrt(2)``; the flat
inner product therefore equals the block trace inner product, and round-trips
of Hermitian input are exact to machine precision (diagonals bit-exactly,
off-diagonals up to the ulps of the ``sqrt(2)`` scaling).
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np
import scipy.linalg

__all__ = [
    "BlockLayout",
    "PackedSDP",
    "PackedADMMResult",
    "admm_solve_packed",
    "admm_solve_packed_batch",
    "get_layout",
    "pack_hermitian_stack",
    "positive_part_stack",
    "unpack_hermitian_stack",
]

_SQRT2 = np.sqrt(2.0)


@dataclasses.dataclass(frozen=True)
class _BlockGroup:
    """All blocks of one side length, packed together.

    Attributes:
        dim: block side length (``> 1``; scalars are handled separately).
        block_indices: positions of these blocks in the original dims tuple.
        gather: int array of shape ``(k, dim*dim)`` mapping the group's
            packed-real coordinates to flat-vector positions, ordered
            ``[diag | sqrt2*Re upper | sqrt2*Im upper]`` per block.
        rows / cols: strict upper-triangle index pair for ``dim``.
    """

    dim: int
    block_indices: tuple[int, ...]
    gather: np.ndarray
    rows: np.ndarray
    cols: np.ndarray


class BlockLayout:
    """Precomputed pack/unpack/projection maps for one block structure."""

    def __init__(self, dims: tuple[int, ...] | list[int]):
        self.dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in self.dims):
            raise ValueError("block dimensions must be positive")
        self.total_real_dim = sum(d * d for d in self.dims)
        self.offsets = np.cumsum([0] + [d * d for d in self.dims])

        by_dim: dict[int, list[int]] = {}
        for index, d in enumerate(self.dims):
            by_dim.setdefault(d, []).append(index)

        self.scalar_positions = np.array(
            [self.offsets[i] for i in by_dim.get(1, [])], dtype=np.intp
        )
        self.groups: list[_BlockGroup] = []
        for d in sorted(by_dim):
            if d == 1:
                continue
            indices = by_dim[d]
            gather = np.empty((len(indices), d * d), dtype=np.intp)
            for row, block_index in enumerate(indices):
                gather[row] = self.offsets[block_index] + np.arange(d * d)
            rows, cols = np.triu_indices(d, k=1)
            self.groups.append(
                _BlockGroup(
                    dim=d,
                    block_indices=tuple(indices),
                    gather=gather,
                    rows=rows,
                    cols=cols,
                )
            )

    # -- packing -----------------------------------------------------------------
    # All three structural operations are leading-dimension agnostic: a vector
    # of shape (..., total_real_dim) is handled with the trailing axis packed,
    # so a whole batch of independent SDP iterates can be projected with the
    # same code (and a single batched eigh) as a single one.

    def unpack_group(self, vector: np.ndarray, group: _BlockGroup) -> np.ndarray:
        """Stacked ``(..., k, d, d)`` Hermitian matrices of one group."""
        d = group.dim
        m = group.rows.size
        seg = vector[..., group.gather]
        matrices = np.zeros(seg.shape[:-1] + (d, d), dtype=np.complex128)
        diag_idx = np.arange(d)
        matrices[..., diag_idx, diag_idx] = seg[..., :d]
        if m:
            upper = (seg[..., d : d + m] + 1j * seg[..., d + m :]) / _SQRT2
            matrices[..., group.rows, group.cols] = upper
            matrices[..., group.cols, group.rows] = upper.conj()
        return matrices

    def pack_group(
        self, matrices: np.ndarray, group: _BlockGroup, out: np.ndarray
    ) -> None:
        """Scatter stacked Hermitian matrices back into the flat vector(s)."""
        d = group.dim
        m = group.rows.size
        seg = np.empty(matrices.shape[:-2] + (d * d,), dtype=float)
        diag_idx = np.arange(d)
        seg[..., :d] = matrices[..., diag_idx, diag_idx].real
        if m:
            upper = matrices[..., group.rows, group.cols]
            seg[..., d : d + m] = _SQRT2 * upper.real
            seg[..., d + m :] = _SQRT2 * upper.imag
        out[..., group.gather] = seg

    def pack_blocks(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Flat packed-real vector of a full list of Hermitian blocks."""
        if len(blocks) != len(self.dims):
            raise ValueError(
                f"expected {len(self.dims)} blocks, got {len(blocks)}"
            )
        out = np.empty(self.total_real_dim, dtype=float)
        for position, block in zip(self.scalar_positions, self._scalar_blocks(blocks)):
            out[position] = block.real
        for group in self.groups:
            stack = np.stack(
                [
                    np.asarray(blocks[i], dtype=np.complex128)
                    for i in group.block_indices
                ]
            )
            stack = (stack + stack.conj().transpose(0, 2, 1)) / 2
            self.pack_group(stack, group, out)
        return out

    def _scalar_blocks(self, blocks: list[np.ndarray]) -> list[np.complex128]:
        values = []
        for index, d in enumerate(self.dims):
            if d == 1:
                values.append(np.asarray(blocks[index]).reshape(1)[0])
        return values

    def unpack_blocks(self, vector: np.ndarray) -> list[np.ndarray]:
        """Inverse of :meth:`pack_blocks`: per-block Hermitian matrices."""
        blocks: list[np.ndarray | None] = [None] * len(self.dims)
        for position, index in zip(
            self.scalar_positions,
            [i for i, d in enumerate(self.dims) if d == 1],
        ):
            blocks[index] = np.array([[vector[position]]], dtype=np.complex128)
        for group in self.groups:
            stack = self.unpack_group(vector, group)
            for row, index in enumerate(group.block_indices):
                blocks[index] = stack[row]
        return blocks  # type: ignore[return-value]

    # -- the fused hot-path operation --------------------------------------------
    def project_psd(self, vector: np.ndarray) -> np.ndarray:
        """PSD-cone projection of packed block variable(s), fully batched.

        Equivalent to unpacking every block, replacing it by its positive
        part (scalars clipped at zero), and repacking — but with one batched
        ``eigh`` per distinct block size and no per-block Python loop.
        Accepts any leading batch shape: ``(..., total_real_dim)``.
        """
        out = np.zeros(vector.shape, dtype=float)
        if self.scalar_positions.size:
            out[..., self.scalar_positions] = np.clip(
                vector[..., self.scalar_positions], 0.0, None
            )
        for group in self.groups:
            matrices = self.unpack_group(vector, group)
            eigenvalues, eigenvectors = np.linalg.eigh(matrices)
            np.clip(eigenvalues, 0.0, None, out=eigenvalues)
            projected = (
                eigenvectors * eigenvalues[..., None, :]
            ) @ eigenvectors.conj().swapaxes(-1, -2)
            self.pack_group(projected, group, out)
        return out


# ---------------------------------------------------------------------------
# Stacked Hermitian primitives (shared by the batch certification pass)
# ---------------------------------------------------------------------------

def positive_part_stack(matrices: np.ndarray) -> np.ndarray:
    """Positive part ``A_+`` of a stack of Hermitian matrices, one batched eigh.

    Accepts any leading batch shape ``(..., d, d)``; each matrix is
    symmetrised first, exactly like :func:`repro.linalg.decompositions.positive_part`
    does for a single matrix.  Per-element results are independent of the
    batch composition, which is what lets the fused certification pass
    produce bit-identical bounds to one-at-a-time certification.
    """
    matrices = np.asarray(matrices, dtype=np.complex128)
    matrices = (matrices + matrices.conj().swapaxes(-1, -2)) / 2
    eigenvalues, eigenvectors = np.linalg.eigh(matrices)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * eigenvalues[..., None, :]) @ eigenvectors.conj().swapaxes(
        -1, -2
    )


def pack_hermitian_stack(matrices: np.ndarray) -> np.ndarray:
    """Batched ``hvec``: Hermitian ``(..., n, n)`` → packed-real ``(..., n*n)``.

    Performs the exact elementwise operations of
    :func:`repro.linalg.hermitian.hvec` (symmetrise, real diagonal, then
    ``sqrt(2)``-scaled real and imaginary strict upper triangles) on a whole
    stack, so packing a batch is bit-identical to packing each matrix alone.
    The batched template instantiation of :mod:`repro.sdp.diamond` uses this
    to write all objective vectors and predicate rows of a solve class in two
    calls.
    """
    matrices = np.asarray(matrices, dtype=np.complex128)
    matrices = (matrices + matrices.conj().swapaxes(-1, -2)) / 2
    n = matrices.shape[-1]
    out = np.empty(matrices.shape[:-2] + (n * n,), dtype=float)
    diag_idx = np.arange(n)
    out[..., :n] = matrices[..., diag_idx, diag_idx].real
    if n > 1:
        rows, cols = np.triu_indices(n, k=1)
        m = rows.size
        upper = matrices[..., rows, cols]
        out[..., n : n + m] = _SQRT2 * upper.real
        out[..., n + m :] = _SQRT2 * upper.imag
    return out


def unpack_hermitian_stack(vectors: np.ndarray, n: int) -> np.ndarray:
    """Batched ``hunvec``: packed-real ``(..., n*n)`` → Hermitian ``(..., n, n)``.

    Reuses the :class:`BlockLayout` gather machinery of a single-block layout,
    whose packed-real embedding is the same isometry as
    :func:`repro.linalg.hermitian.hvec` (diagonal first, then ``sqrt(2)``-scaled
    real and imaginary strict-upper triangles).
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.shape[-1] != n * n:
        raise ValueError(
            f"expected trailing dimension {n * n} for side length {n}, "
            f"got {vectors.shape[-1]}"
        )
    if n == 1:
        return vectors.astype(np.complex128)[..., None]
    layout = get_layout((n,))
    matrices = layout.unpack_group(vectors, layout.groups[0])
    return matrices[..., 0, :, :]


_LAYOUT_CACHE: dict[tuple[int, ...], BlockLayout] = {}
_LAYOUT_LOCK = threading.Lock()


def get_layout(dims: tuple[int, ...] | list[int]) -> BlockLayout:
    """Process-wide cached :class:`BlockLayout` for a dims tuple."""
    key = tuple(int(d) for d in dims)
    layout = _LAYOUT_CACHE.get(key)
    if layout is None:
        with _LAYOUT_LOCK:
            layout = _LAYOUT_CACHE.get(key)
            if layout is None:
                layout = BlockLayout(key)
                _LAYOUT_CACHE[key] = layout
    return layout


# ---------------------------------------------------------------------------
# Packed ADMM core
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class PackedSDP:
    """A standard-form SDP in dense packed-real form, ready to iterate.

    ``factor`` is a ``(L, lower)`` Cholesky pair of ``A A^T`` (plus a tiny
    ridge) as accepted by :func:`scipy.linalg.cho_solve`; the diamond-norm
    template cache of :mod:`repro.sdp.diamond` reuses the expensive part of
    this factor across solves of the same shape.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    layout: BlockLayout
    factor: tuple[np.ndarray, bool]

    @classmethod
    def assemble(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        layout: BlockLayout,
    ) -> "PackedSDP":
        """Build a packed problem, factorising the normal matrix."""
        normal = a @ a.T
        ridge = 1e-12 * max(1.0, float(np.trace(normal)) / normal.shape[0])
        factor = scipy.linalg.cho_factor(
            normal + ridge * np.eye(normal.shape[0]), check_finite=False
        )
        return cls(a=a, b=b, c=c, layout=layout, factor=factor)


@dataclasses.dataclass
class PackedADMMResult:
    """Flat-vector outcome of the packed ADMM iteration."""

    x_vec: np.ndarray
    y: np.ndarray
    s_vec: np.ndarray
    primal_objective: float
    dual_objective: float
    primal_residual: float
    dual_residual: float
    iterations: int
    converged: bool


def admm_solve_packed(
    packed: PackedSDP,
    *,
    max_iterations: int = 4000,
    tolerance: float = 1e-7,
    mu: float = 1.0,
    adapt_mu: bool = True,
    x0: np.ndarray | None = None,
    y0: np.ndarray | None = None,
    s0: np.ndarray | None = None,
) -> PackedADMMResult:
    """Dual-ascent ADMM (Wen–Goldfarb–Yin) on a packed problem.

    Identical algorithm to the historic :meth:`ADMMSolver.solve`, but every
    structural operation runs through the vectorized :class:`BlockLayout`,
    so the per-iteration Python cost is a handful of dense matvecs plus one
    batched ``eigh`` per distinct block size.
    """
    a, b, c = packed.a, packed.b, packed.c
    layout, factor = packed.layout, packed.factor
    n = layout.total_real_dim

    x_vec = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    s_vec = np.zeros(n) if s0 is None else np.asarray(s0, dtype=float).copy()
    y = np.zeros(a.shape[0]) if y0 is None else np.asarray(y0, dtype=float).copy()

    b_scale = 1.0 + np.linalg.norm(b)
    c_scale = 1.0 + np.linalg.norm(c)

    primal_residual = np.inf
    dual_residual = np.inf
    iteration = 0
    converged = False
    check_every = 20
    plateau_checks = 0
    previous_dual = -np.inf

    for iteration in range(1, max_iterations + 1):
        # y-update: (A A*) y = mu * (b - A(X)) + A(C - S)
        rhs = mu * (b - a @ x_vec) + a @ (c - s_vec)
        y = scipy.linalg.cho_solve(factor, rhs, check_finite=False)

        # S-update: project V = C - A*(y) - mu X onto the PSD cone.
        v_vec = c - a.T @ y - mu * x_vec
        s_vec = layout.project_psd(v_vec)

        # X-update: X = (S - V) / mu  (automatically PSD).
        x_vec = (s_vec - v_vec) / mu

        if iteration % check_every == 0 or iteration == max_iterations:
            primal_residual = np.linalg.norm(a @ x_vec - b) / b_scale
            dual_residual = np.linalg.norm(a.T @ y + s_vec - c) / c_scale
            gap = abs(float(c @ x_vec) - float(b @ y)) / (
                1.0 + abs(float(c @ x_vec)) + abs(float(b @ y))
            )
            if max(primal_residual, dual_residual, gap) < tolerance:
                converged = True
                break
            # Plateau detection: the caller only needs a good dual candidate
            # (the bound is certified separately), so give up once the dual
            # objective stops moving.
            dual_objective = float(b @ y)
            if abs(dual_objective - previous_dual) < 0.02 * tolerance * (
                1.0 + abs(dual_objective)
            ):
                plateau_checks += 1
                if plateau_checks >= 5:
                    break
            else:
                plateau_checks = 0
            previous_dual = dual_objective
            if adapt_mu and iteration % 60 == 0:
                if primal_residual > 10 * dual_residual:
                    mu = min(mu * 1.5, 1e6)
                elif dual_residual > 10 * primal_residual:
                    mu = max(mu / 1.5, 1e-6)

    return PackedADMMResult(
        x_vec=x_vec,
        y=y,
        s_vec=s_vec,
        primal_objective=float(c @ x_vec),
        dual_objective=float(b @ y),
        primal_residual=float(primal_residual),
        dual_residual=float(dual_residual),
        iterations=iteration,
        converged=converged,
    )


def admm_solve_packed_batch(
    problems: list[PackedSDP],
    *,
    max_iterations: int = 4000,
    tolerance: float = 1e-7,
    mu: float = 1.0,
    adapt_mu: bool = True,
) -> list[PackedADMMResult]:
    """Run ADMM on many same-shaped SDPs simultaneously.

    All problems must share one :class:`BlockLayout` and one constraint count
    — exactly the situation the program-level scheduler produces, where every
    unique (gate, predicate) solve class of a circuit instantiates the same
    diamond-norm template with different data vectors.

    The iterates of all K problems advance in lock-step: the per-iteration
    PSD projection becomes one batched ``eigh`` over ``K * blocks`` small
    matrices and the y-updates one batched matmul against per-problem
    precomputed normal-matrix inverses, so the Python/dispatch overhead of an
    iteration is paid once per *batch* instead of once per problem.  Problems
    that converge (or plateau) are frozen and compacted out of the batch, so
    a single slow instance does not keep the others iterating.

    Results are bit-for-bit independent across batch compositions only up to
    floating-point reduction order; every returned dual candidate is still
    certified independently by the caller.
    """
    if not problems:
        return []
    layout = problems[0].layout
    m = problems[0].a.shape[0]
    if any(p.layout.dims != layout.dims or p.a.shape[0] != m for p in problems):
        raise ValueError("batched problems must share one layout and constraint count")

    count = len(problems)
    n = layout.total_real_dim
    a = np.stack([p.a for p in problems])
    b = np.stack([p.b for p in problems])
    c = np.stack([p.c for p in problems])
    # Per-problem inverse of the (ridged) normal matrix: m is tiny, so an
    # explicit inverse turns every y-update into one batched matmul.
    eye = np.eye(m)
    normal_inv = np.stack(
        [scipy.linalg.cho_solve(p.factor, eye, check_finite=False) for p in problems]
    )
    at = a.swapaxes(-1, -2)

    x = np.zeros((count, n))
    s = np.zeros((count, n))
    y = np.zeros((count, m))
    mus = np.full(count, float(mu))
    b_scale = 1.0 + np.linalg.norm(b, axis=1)
    c_scale = 1.0 + np.linalg.norm(c, axis=1)

    active = np.arange(count)
    plateau_checks = np.zeros(count, dtype=int)
    previous_dual = np.full(count, -np.inf)
    results: list[PackedADMMResult | None] = [None] * count
    check_every = 20

    def freeze(local_indices: np.ndarray, converged_mask: np.ndarray, iteration: int,
               pr: np.ndarray, dr: np.ndarray) -> None:
        for local in local_indices:
            original = int(active[local])
            results[original] = PackedADMMResult(
                x_vec=x[local].copy(),
                y=y[local].copy(),
                s_vec=s[local].copy(),
                primal_objective=float(c[local] @ x[local]),
                dual_objective=float(b[local] @ y[local]),
                primal_residual=float(pr[local]),
                dual_residual=float(dr[local]),
                iterations=iteration,
                converged=bool(converged_mask[local]),
            )

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        rhs = mus[:, None] * (b - (a @ x[..., None])[..., 0]) + (
            a @ (c - s)[..., None]
        )[..., 0]
        y = (normal_inv @ rhs[..., None])[..., 0]

        v = c - (at @ y[..., None])[..., 0] - mus[:, None] * x
        s = layout.project_psd(v)
        x = (s - v) / mus[:, None]

        if iteration % check_every == 0 or iteration == max_iterations:
            pr = np.linalg.norm((a @ x[..., None])[..., 0] - b, axis=1) / b_scale
            dr = np.linalg.norm((at @ y[..., None])[..., 0] + s - c, axis=1) / c_scale
            cx = np.einsum("ij,ij->i", c, x)
            by = np.einsum("ij,ij->i", b, y)
            gap = np.abs(cx - by) / (1.0 + np.abs(cx) + np.abs(by))
            converged_mask = np.maximum(np.maximum(pr, dr), gap) < tolerance

            moved = np.abs(by - previous_dual) >= 0.02 * tolerance * (1.0 + np.abs(by))
            plateau_checks = np.where(moved, 0, plateau_checks + 1)
            previous_dual = by
            plateaued = plateau_checks >= 5

            done = converged_mask | plateaued | (iteration == max_iterations)
            if np.any(done):
                freeze(np.nonzero(done)[0], converged_mask, iteration, pr, dr)
                keep = ~done
                if not np.any(keep):
                    break
                active = active[keep]
                a, b, c, at = a[keep], b[keep], c[keep], at[keep]
                normal_inv = normal_inv[keep]
                x, y, s = x[keep], y[keep], s[keep]
                mus = mus[keep]
                b_scale, c_scale = b_scale[keep], c_scale[keep]
                plateau_checks = plateau_checks[keep]
                previous_dual = previous_dual[keep]
                pr, dr = pr[keep], dr[keep]

            if adapt_mu and iteration % 60 == 0 and active.size:
                grow = pr > 10 * dr
                shrink = dr > 10 * pr
                mus = np.where(grow, np.minimum(mus * 1.5, 1e6), mus)
                mus = np.where(shrink, np.maximum(mus / 1.5, 1e-6), mus)

    # Every problem is frozen inside the loop: the final iteration always
    # runs a check (`iteration == max_iterations`) whose `done` mask includes
    # it.  The loop body can only be skipped entirely for max_iterations < 1,
    # which SDPConfig.validate rejects — assert rather than carry dead
    # recovery code.
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
