"""Brute-force lower bounds for diamond-norm quantities (test oracle).

The certified bounds produced by :mod:`repro.sdp.diamond` are upper bounds by
weak duality.  To check that they are also *tight* (and, more importantly, to
property-test that they really are upper bounds), this module searches for
feasible primal points — input states satisfying the predicate — and evaluates
the achieved output trace distance.  Any feasible point is a valid lower
bound, so the inequality ``lower <= certified upper`` must always hold.

The search combines random feasible states with a local optimisation over
purification parameters.  It is exponential-free (dimensions are at most 4x4
with a 4-dimensional reference) but not guaranteed to find the optimum, which
is fine for a lower bound.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..linalg.channels import QuantumChannel, apply_kraus
from ..linalg.norms import trace_norm
from ..linalg.decompositions import nearest_density_matrix, purification

__all__ = [
    "achieved_error_for_input",
    "random_feasible_state",
    "diamond_lower_bound",
    "constrained_diamond_lower_bound",
]


def achieved_error_for_input(
    noisy: QuantumChannel, ideal: QuantumChannel, rho_joint: np.ndarray
) -> float:
    """``0.5 || (noisy ⊗ I)(rho) - (ideal ⊗ I)(rho) ||_1`` for a joint input.

    ``rho_joint`` lives on (system ⊗ reference) where the reference dimension
    equals the system dimension.
    """
    dim = noisy.dim_in
    identity = [np.eye(dim, dtype=np.complex128)]
    noisy_kraus = [np.kron(k, identity[0]) for k in noisy.kraus]
    ideal_kraus = [np.kron(k, identity[0]) for k in ideal.kraus]
    out_noisy = apply_kraus(noisy_kraus, rho_joint)
    out_ideal = apply_kraus(ideal_kraus, rho_joint)
    return 0.5 * trace_norm(out_noisy - out_ideal)


def random_feasible_state(
    rho_local: np.ndarray,
    delta: float,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A random joint (system ⊗ reference) state whose reduction is δ-close to ρ'.

    Construction: perturb ρ' by a random Hermitian of trace-norm at most δ,
    project back onto density matrices, then purify into the reference system.
    The purified state's reduction *equals* the perturbed local state, so the
    predicate ``|| reduced - rho' ||_1 <= delta`` holds by construction (up to
    the projection, which only shrinks the distance).
    """
    rng = rng or np.random.default_rng()
    dim = rho_local.shape[0]
    if delta <= 0:
        local = nearest_density_matrix(rho_local)
    else:
        noise = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        noise = (noise + noise.conj().T) / 2
        noise *= (delta * rng.uniform(0.0, 1.0)) / max(trace_norm(noise), 1e-12)
        local = nearest_density_matrix(rho_local + noise)
    psi = purification(local)
    return np.outer(psi, psi.conj())


def diamond_lower_bound(
    noisy: QuantumChannel,
    ideal: QuantumChannel,
    *,
    num_samples: int = 32,
    rng: np.random.Generator | None = None,
) -> float:
    """Unconstrained lower bound via random pure joint inputs + local polish."""
    rng = rng or np.random.default_rng(7)
    dim = noisy.dim_in
    best = 0.0

    def objective(params: np.ndarray) -> float:
        vec = params[: dim * dim] + 1j * params[dim * dim :]
        norm = np.linalg.norm(vec)
        if norm <= 1e-12:
            return 0.0
        rho = np.outer(vec, vec.conj()) / norm**2
        return -achieved_error_for_input(noisy, ideal, rho)

    for _ in range(num_samples):
        vec = rng.normal(size=dim * dim) + 1j * rng.normal(size=dim * dim)
        vec /= np.linalg.norm(vec)
        rho = np.outer(vec, vec.conj())
        best = max(best, achieved_error_for_input(noisy, ideal, rho))

    start = rng.normal(size=2 * dim * dim)
    result = optimize.minimize(
        objective, start, method="Nelder-Mead", options={"maxiter": 400, "fatol": 1e-12}
    )
    best = max(best, -float(result.fun))
    return best


def constrained_diamond_lower_bound(
    noisy: QuantumChannel,
    ideal: QuantumChannel,
    rho_local: np.ndarray,
    delta: float,
    *,
    num_samples: int = 64,
    rng: np.random.Generator | None = None,
) -> float:
    """Lower bound on the (ρ̂, δ)-diamond norm via feasible random inputs."""
    rng = rng or np.random.default_rng(11)
    best = 0.0
    for _ in range(num_samples):
        rho = random_feasible_state(rho_local, delta, rng=rng)
        best = max(best, achieved_error_for_input(noisy, ideal, rho))
    # Also try the canonical purification of rho' itself (delta = 0 point).
    psi = purification(nearest_density_matrix(rho_local))
    rho0 = np.outer(psi, psi.conj())
    best = max(best, achieved_error_for_input(noisy, ideal, rho0))
    return best
