"""An ADMM (alternating-direction) solver for standard-form SDPs.

The algorithm is the dual augmented-Lagrangian ADMM of Wen, Goldfarb and Yin
("Alternating direction augmented Lagrangian methods for semidefinite
programming", 2010), specialised to the small dense problems produced by the
diamond-norm formulations of Section 6:

    primal:  min <C, X>   s.t.  A(X) = b,  X >= 0
    dual:    max b'y      s.t.  A*(y) + S = C,  S >= 0

Each iteration solves a small linear system in ``y`` (the normal matrix
``A A*`` is factorised once), projects onto the PSD cone per block to obtain
``S``, and updates the primal multiplier ``X`` — which is PSD by construction.

The iteration itself lives in :func:`repro.sdp.kernel.admm_solve_packed`,
which operates on flat packed-real vectors with batched PSD projections;
this module provides the object-level view over :class:`SDPProblem`.

The solver is *not* trusted for soundness: whatever it returns is passed to
:mod:`repro.sdp.certificates`, which repairs the dual candidate into an
exactly feasible point and reports the corresponding (weak-duality) upper
bound.  The ADMM solution only determines how tight that certified bound is.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import SDPError
from .kernel import PackedSDP, admm_solve_packed, get_layout
from .problem import BlockVector, SDPProblem

__all__ = ["ADMMResult", "ADMMSolver", "solve_sdp"]


@dataclasses.dataclass
class ADMMResult:
    """Outcome of an ADMM solve."""

    x: BlockVector
    y: np.ndarray
    s: BlockVector
    primal_objective: float
    dual_objective: float
    primal_residual: float
    dual_residual: float
    iterations: int
    converged: bool

    @property
    def duality_gap(self) -> float:
        return abs(self.primal_objective - self.dual_objective) / (
            1.0 + abs(self.primal_objective) + abs(self.dual_objective)
        )


class ADMMSolver:
    """Reusable ADMM solver (keeps the factorised normal matrix)."""

    def __init__(
        self,
        problem: SDPProblem,
        *,
        max_iterations: int = 4000,
        tolerance: float = 1e-7,
        mu: float = 1.0,
        adapt_mu: bool = True,
    ):
        if problem.num_constraints == 0:
            raise SDPError("cannot solve an SDP without constraints")
        self.problem = problem
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.mu = float(mu)
        self.adapt_mu = bool(adapt_mu)
        self._layout = get_layout(problem.block_dims)
        self._packed = PackedSDP.assemble(
            problem.constraint_matrix(),
            problem.constraint_values(),
            problem.objective_vector(),
            self._layout,
        )

    def solve(
        self,
        *,
        x0: BlockVector | None = None,
        y0: np.ndarray | None = None,
        s0: BlockVector | None = None,
    ) -> ADMMResult:
        """Run ADMM, optionally warm-starting from a previous solution."""
        raw = admm_solve_packed(
            self._packed,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            mu=self.mu,
            adapt_mu=self.adapt_mu,
            x0=x0.to_real() if x0 is not None else None,
            y0=y0,
            s0=s0.to_real() if s0 is not None else None,
        )
        return ADMMResult(
            x=self.problem.split(raw.x_vec),
            y=raw.y,
            s=self.problem.split(raw.s_vec),
            primal_objective=raw.primal_objective,
            dual_objective=raw.dual_objective,
            primal_residual=raw.primal_residual,
            dual_residual=raw.dual_residual,
            iterations=raw.iterations,
            converged=raw.converged,
        )


def solve_sdp(
    problem: SDPProblem,
    *,
    max_iterations: int = 4000,
    tolerance: float = 1e-7,
    mu: float = 1.0,
    warm_start: ADMMResult | None = None,
) -> ADMMResult:
    """Solve a standard-form SDP with ADMM (functional wrapper)."""
    solver = ADMMSolver(
        problem, max_iterations=max_iterations, tolerance=tolerance, mu=mu
    )
    if warm_start is not None:
        return solver.solve(x0=warm_start.x, y0=warm_start.y, s0=warm_start.s)
    return solver.solve()
