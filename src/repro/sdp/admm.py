"""An ADMM (alternating-direction) solver for standard-form SDPs.

The algorithm is the dual augmented-Lagrangian ADMM of Wen, Goldfarb and Yin
("Alternating direction augmented Lagrangian methods for semidefinite
programming", 2010), specialised to the small dense problems produced by the
diamond-norm formulations of Section 6:

    primal:  min <C, X>   s.t.  A(X) = b,  X >= 0
    dual:    max b'y      s.t.  A*(y) + S = C,  S >= 0

Each iteration solves a small linear system in ``y`` (the normal matrix
``A A*`` is factorised once), projects onto the PSD cone per block to obtain
``S``, and updates the primal multiplier ``X`` — which is PSD by construction.

The solver is *not* trusted for soundness: whatever it returns is passed to
:mod:`repro.sdp.certificates`, which repairs the dual candidate into an
exactly feasible point and reports the corresponding (weak-duality) upper
bound.  The ADMM solution only determines how tight that certified bound is.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg

from ..errors import SDPError
from ..linalg.decompositions import positive_part
from .problem import BlockVector, SDPProblem

__all__ = ["ADMMResult", "ADMMSolver", "solve_sdp"]


@dataclasses.dataclass
class ADMMResult:
    """Outcome of an ADMM solve."""

    x: BlockVector
    y: np.ndarray
    s: BlockVector
    primal_objective: float
    dual_objective: float
    primal_residual: float
    dual_residual: float
    iterations: int
    converged: bool

    @property
    def duality_gap(self) -> float:
        return abs(self.primal_objective - self.dual_objective) / (
            1.0 + abs(self.primal_objective) + abs(self.dual_objective)
        )


def _project_blocks(blocks: BlockVector) -> BlockVector:
    projected = []
    for block in blocks.blocks:
        if block.shape == (1, 1):
            projected.append(np.array([[max(0.0, block[0, 0].real)]], dtype=np.complex128))
        else:
            projected.append(positive_part(block))
    return BlockVector(projected)


class ADMMSolver:
    """Reusable ADMM solver (keeps the factorised normal matrix)."""

    def __init__(
        self,
        problem: SDPProblem,
        *,
        max_iterations: int = 4000,
        tolerance: float = 1e-7,
        mu: float = 1.0,
        adapt_mu: bool = True,
    ):
        if problem.num_constraints == 0:
            raise SDPError("cannot solve an SDP without constraints")
        self.problem = problem
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.mu = float(mu)
        self.adapt_mu = bool(adapt_mu)

        self._a = problem.constraint_matrix()
        self._b = problem.constraint_values()
        self._c = problem.objective_vector()
        normal = self._a @ self._a.T
        # Tiny ridge guards against numerically dependent constraints.
        ridge = 1e-12 * max(1.0, float(np.trace(normal)) / normal.shape[0])
        self._normal_factor = scipy.linalg.cho_factor(
            normal + ridge * np.eye(normal.shape[0])
        )

    # -- linear operator helpers ------------------------------------------------
    def _apply_a(self, x: np.ndarray) -> np.ndarray:
        return self._a @ x

    def _apply_at(self, y: np.ndarray) -> np.ndarray:
        return self._a.T @ y

    def solve(
        self,
        *,
        x0: BlockVector | None = None,
        y0: np.ndarray | None = None,
        s0: BlockVector | None = None,
    ) -> ADMMResult:
        """Run ADMM, optionally warm-starting from a previous solution."""
        dims = self.problem.block_dims
        x_vec = (x0.to_real() if x0 is not None else np.zeros(self.problem.real_dimension))
        s_vec = (s0.to_real() if s0 is not None else np.zeros(self.problem.real_dimension))
        y = y0.copy() if y0 is not None else np.zeros(self.problem.num_constraints)

        mu = self.mu
        b_scale = 1.0 + np.linalg.norm(self._b)
        c_scale = 1.0 + np.linalg.norm(self._c)

        primal_residual = np.inf
        dual_residual = np.inf
        iteration = 0
        converged = False
        check_every = 20
        plateau_checks = 0
        previous_dual = -np.inf

        for iteration in range(1, self.max_iterations + 1):
            # y-update: (A A*) y = mu * (b - A(X)) + A(C - S)
            rhs = mu * (self._b - self._apply_a(x_vec)) + self._apply_a(self._c - s_vec)
            y = scipy.linalg.cho_solve(self._normal_factor, rhs)

            # S-update: project V = C - A*(y) - mu X onto the PSD cone.
            v_vec = self._c - self._apply_at(y) - mu * x_vec
            v_blocks = self.problem.split(v_vec)
            s_blocks = _project_blocks(v_blocks)
            s_vec = s_blocks.to_real()

            # X-update: X = (S - V) / mu  (automatically PSD).
            x_vec = (s_vec - v_vec) / mu

            if iteration % check_every == 0 or iteration == self.max_iterations:
                primal_residual = np.linalg.norm(self._apply_a(x_vec) - self._b) / b_scale
                dual_residual = (
                    np.linalg.norm(self._apply_at(y) + s_vec - self._c) / c_scale
                )
                gap = abs(float(self._c @ x_vec) - float(self._b @ y)) / (
                    1.0 + abs(float(self._c @ x_vec)) + abs(float(self._b @ y))
                )
                if max(primal_residual, dual_residual, gap) < self.tolerance:
                    converged = True
                    break
                # Plateau detection: the caller only needs a good dual
                # candidate (the bound is certified separately), so give up
                # once the dual objective stops moving.
                dual_objective = float(self._b @ y)
                if abs(dual_objective - previous_dual) < 0.02 * self.tolerance * (
                    1.0 + abs(dual_objective)
                ):
                    plateau_checks += 1
                    if plateau_checks >= 5:
                        break
                else:
                    plateau_checks = 0
                previous_dual = dual_objective
                if self.adapt_mu and iteration % 60 == 0:
                    # Balance the residuals by rescaling the penalty parameter.
                    if primal_residual > 10 * dual_residual:
                        mu = min(mu * 1.5, 1e6)
                    elif dual_residual > 10 * primal_residual:
                        mu = max(mu / 1.5, 1e-6)

        x_blocks = self.problem.split(x_vec)
        s_blocks = self.problem.split(s_vec)
        return ADMMResult(
            x=x_blocks,
            y=y,
            s=s_blocks,
            primal_objective=float(self._c @ x_vec),
            dual_objective=float(self._b @ y),
            primal_residual=float(primal_residual),
            dual_residual=float(dual_residual),
            iterations=iteration,
            converged=converged,
        )


def solve_sdp(
    problem: SDPProblem,
    *,
    max_iterations: int = 4000,
    tolerance: float = 1e-7,
    mu: float = 1.0,
    warm_start: ADMMResult | None = None,
) -> ADMMResult:
    """Solve a standard-form SDP with ADMM (functional wrapper)."""
    solver = ADMMSolver(
        problem, max_iterations=max_iterations, tolerance=tolerance, mu=mu
    )
    if warm_start is not None:
        return solver.solve(x0=warm_start.x, y0=warm_start.y, s0=warm_start.s)
    return solver.solve()
