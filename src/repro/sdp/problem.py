"""Standard-form semidefinite programs over block-diagonal Hermitian variables.

The diamond-norm computations of Section 6 are expressed as SDPs in the
standard primal form

    minimise    <C, X>
    subject to  <A_i, X> = b_i          (i = 1..m)
                X >= 0 (block-diagonal),

where ``X`` is a tuple of Hermitian blocks (a 1x1 block models a non-negative
scalar).  The inner product is the real trace inner product, realised through
the isometric vectorisation :func:`repro.linalg.hermitian.hvec`, so the solver
in :mod:`repro.sdp.admm` can work with plain real vectors and a dense
constraint matrix.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..errors import SDPError
from .kernel import get_layout

__all__ = ["BlockVector", "SDPProblem", "Constraint"]


class BlockVector:
    """A tuple of Hermitian matrices matching a block structure."""

    def __init__(self, blocks: Sequence[np.ndarray]):
        self.blocks = [np.asarray(b, dtype=np.complex128) for b in blocks]

    @classmethod
    def zeros(cls, dims: Sequence[int]) -> "BlockVector":
        return cls([np.zeros((d, d), dtype=np.complex128) for d in dims])

    def to_real(self) -> np.ndarray:
        """Concatenated isometric real vectorisation of all blocks."""
        layout = get_layout([b.shape[0] for b in self.blocks])
        return layout.pack_blocks(self.blocks)

    @classmethod
    def from_real(cls, vector: np.ndarray, dims: Sequence[int]) -> "BlockVector":
        layout = get_layout(dims)
        if np.asarray(vector).size != layout.total_real_dim:
            raise SDPError(
                f"expected a vector of length {layout.total_real_dim}, "
                f"got {np.asarray(vector).size}"
            )
        return cls(layout.unpack_blocks(np.asarray(vector, dtype=float)))

    def inner(self, other: "BlockVector") -> float:
        """Real trace inner product ``sum_k tr(A_k B_k)``."""
        total = 0.0
        for a, b in zip(self.blocks, other.blocks):
            total += float(np.real(np.trace(a @ b)))
        return total

    def __len__(self) -> int:
        return len(self.blocks)


@dataclasses.dataclass(frozen=True)
class Constraint:
    """One linear equality ``<A, X> = b`` over the block variable."""

    operator: BlockVector
    value: float
    label: str = ""


class SDPProblem:
    """A standard-form SDP with named constraints.

    Args:
        block_dims: side lengths of the PSD blocks of the variable ``X``.
            A dimension of 1 represents a non-negative scalar.
        objective: the cost blocks ``C`` (minimised).
    """

    def __init__(self, block_dims: Sequence[int], objective: BlockVector):
        self.block_dims = [int(d) for d in block_dims]
        if any(d < 1 for d in self.block_dims):
            raise SDPError("block dimensions must be positive")
        if len(objective.blocks) != len(self.block_dims):
            raise SDPError("objective must have one block per variable block")
        for block, dim in zip(objective.blocks, self.block_dims):
            if block.shape != (dim, dim):
                raise SDPError(
                    f"objective block of shape {block.shape} does not match dimension {dim}"
                )
        self.objective = objective
        self.constraints: list[Constraint] = []

    # -- construction --------------------------------------------------------
    def add_constraint(
        self, operator_blocks: Sequence[np.ndarray], value: float, *, label: str = ""
    ) -> None:
        """Add an equality constraint given one operator per block."""
        if len(operator_blocks) != len(self.block_dims):
            raise SDPError("constraint must provide one operator per block")
        blocks = []
        for block, dim in zip(operator_blocks, self.block_dims):
            block = np.asarray(block, dtype=np.complex128)
            if block.shape != (dim, dim):
                raise SDPError(
                    f"constraint block of shape {block.shape} does not match dimension {dim}"
                )
            blocks.append(block)
        self.constraints.append(Constraint(BlockVector(blocks), float(value), label))

    # -- dense views ------------------------------------------------------------
    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def real_dimension(self) -> int:
        return sum(d * d for d in self.block_dims)

    def constraint_matrix(self) -> np.ndarray:
        """Dense matrix whose rows are the vectorised constraint operators."""
        if not self.constraints:
            raise SDPError("the problem has no constraints")
        return np.stack([c.operator.to_real() for c in self.constraints])

    def constraint_values(self) -> np.ndarray:
        return np.array([c.value for c in self.constraints], dtype=float)

    def objective_vector(self) -> np.ndarray:
        return self.objective.to_real()

    def split(self, vector: np.ndarray) -> BlockVector:
        """Turn a real vector back into a block variable."""
        return BlockVector.from_real(vector, self.block_dims)

    def primal_objective(self, x: BlockVector) -> float:
        return self.objective.inner(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SDPProblem(blocks={self.block_dims}, constraints={self.num_constraints})"
        )
