"""Semidefinite programming engine for constrained diamond norms (Section 6)."""

from .problem import BlockVector, Constraint, SDPProblem
from .admm import ADMMResult, ADMMSolver, solve_sdp
from .kernel import (
    BlockLayout,
    PackedADMMResult,
    PackedSDP,
    admm_solve_packed,
    admm_solve_packed_batch,
    get_layout,
    positive_part_stack,
    unpack_hermitian_stack,
)
from .certificates import (
    DualCertificate,
    certified_value,
    certified_values_batch,
    repair_dual_candidate,
    repair_dual_candidates_batch,
    verify_certificate,
)
from .diamond import (
    DiamondNormBound,
    GateBoundCache,
    build_constrained_diamond_sdp,
    constrained_diamond_norm,
    constrained_diamond_norms_batch,
    diamond_distance,
    gate_error_bound,
    gate_error_bounds_batch,
    q_lambda_diamond_norm,
    rho_delta_constraint_bound,
    rho_delta_diamond_norm,
)
from .brute import (
    achieved_error_for_input,
    constrained_diamond_lower_bound,
    diamond_lower_bound,
    random_feasible_state,
)

__all__ = [name for name in dir() if not name.startswith("_")]
