"""Phase-span tracing: nested, picklable, Chrome-trace-exportable.

The tracer answers "where did the time go?" for one analysis, one engine
batch, or one whole experiment sweep:

* a **span** is one named, timed phase (``scheduler.walk``, ``sdp.admm``,
  ``engine.execute`` ...) with a category, free-form ``args``, and the
  process/thread that ran it;
* spans **nest**: the current span id travels in a :class:`contextvars.
  ContextVar`, so a span opened inside another records its parent without
  any explicit plumbing (a fresh thread starts a new top-level stack);
* spans are **picklable plain data** (a dataclass of primitives), so pool
  workers trace locally and ship their span lists back to the parent inside
  the worker payload, where they are merged into the active collector —
  one trace covers all processes;
* :func:`chrome_trace` renders any span list as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto loadable), with worker processes shown
  as separate pid rows.

**Zero cost when off.**  Instrumentation points call :func:`span`, which
checks one module global and returns a shared no-op context manager when no
collector is installed — no allocation, no clock read.  Tracing never
changes what the pipeline computes either way: spans only record clocks, so
traced analyses are bit-identical to untraced ones.
"""

from __future__ import annotations

import contextvars
import dataclasses
import json
import os
import threading
import time

__all__ = [
    "Span",
    "SpanCollector",
    "chrome_trace",
    "collecting",
    "span",
    "tracing_active",
    "write_chrome_trace",
]


@dataclasses.dataclass
class Span:
    """One finished phase: plain picklable data, clocks in seconds.

    ``start`` is a ``time.perf_counter()`` reading; within one process spans
    share that clock, so nesting and ordering are exact.  Worker-process
    spans are re-based by the engine (see ``shift``) onto the parent's
    clock using the job dispatch time, which keeps cross-process rows
    aligned to within the fork/IPC latency.
    """

    name: str
    category: str
    start: float
    duration: float
    pid: int
    tid: int
    span_id: int
    parent_id: int | None = None
    args: dict | None = None

    def shift(self, offset: float) -> "Span":
        """A copy with the start clock shifted by ``offset`` seconds."""
        return dataclasses.replace(self, start=self.start + offset)

    def to_json_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Span":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


class SpanCollector:
    """Accumulates finished spans; thread-safe, one per active trace."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1

    def next_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def extend(self, spans) -> None:
        """Merge foreign spans (worker processes); ids are re-assigned to a
        private range per batch so they can never collide with local ids."""
        spans = [
            item if isinstance(item, Span) else Span.from_json_dict(item)
            for item in spans
        ]
        if not spans:
            return
        with self._lock:
            base = self._next_id
            self._next_id += max(item.span_id for item in spans) + 1
            for item in spans:
                self._spans.append(
                    dataclasses.replace(
                        item,
                        span_id=item.span_id + base,
                        parent_id=(
                            item.parent_id + base
                            if item.parent_id is not None
                            else None
                        ),
                    )
                )

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The active collector (module-global: one trace at a time per process, and
#: spans recorded from helper threads — the scheduler's solve pool — must
#: land in the same trace even though threads do not inherit context).
_COLLECTOR: SpanCollector | None = None

#: The id of the innermost open span in *this* context; contextvar-based so
#: nesting follows the logical call flow, not the collector.
_PARENT: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_trace_parent", default=None
)


def tracing_active() -> bool:
    """Whether a span collector is currently installed in this process."""
    return _COLLECTOR is not None


class _NullSpan:
    """The shared no-op context manager returned while tracing is off.

    Mirrors the :class:`_OpenSpan` surface (``set``), so instrumented code
    never needs to check whether tracing is on.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """An in-flight span: records the clock on entry, the span on exit."""

    __slots__ = (
        "_name",
        "_category",
        "_args",
        "_collector",
        "_start",
        "_id",
        "_parent",
        "_token",
    )

    def __init__(self, collector: SpanCollector, name: str, category: str, args):
        self._collector = collector
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self):
        self._id = self._collector.next_id()
        self._parent = _PARENT.get()
        self._token = _PARENT.set(self._id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        end = time.perf_counter()
        _PARENT.reset(self._token)
        self._collector.add(
            Span(
                name=self._name,
                category=self._category,
                start=self._start,
                duration=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self._id,
                parent_id=self._parent,
                args=self._args,
            )
        )
        return False

    def set(self, **args) -> None:
        """Attach (or update) args on the open span."""
        if self._args is None:
            self._args = {}
        self._args.update(args)


def span(name: str, category: str = "analysis", **args):
    """Open a traced span, or a shared no-op when tracing is off.

    The fast path is one global load and an ``is None`` test.  ``args``
    must be JSON-safe primitives (they ride the wire to trace files).
    """
    collector = _COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return _OpenSpan(collector, name, category, args or None)


class collecting:
    """Context manager installing a fresh collector; yields it.

    Nested activation is rejected: one trace at a time per process keeps
    "who owns the spans" unambiguous (the engine merges worker spans into
    whatever collector is active when the batch finishes).

    >>> with collecting() as trace:
    ...     run_workload()
    >>> write_chrome_trace("out.json", trace.spans())
    """

    def __init__(self) -> None:
        self._collector = SpanCollector()

    def __enter__(self) -> SpanCollector:
        global _COLLECTOR
        if _COLLECTOR is not None:
            raise RuntimeError("a trace collector is already active in this process")
        _COLLECTOR = self._collector
        return self._collector

    def __exit__(self, *exc_info) -> None:
        global _COLLECTOR
        _COLLECTOR = None


def current_collector() -> SpanCollector | None:
    """The active collector (None when tracing is off)."""
    return _COLLECTOR


def reset_tracing() -> None:
    """Drop trace state inherited across a ``fork``.

    A pool worker forked while the parent had an active collector inherits
    it as module state; starting the worker's own trace would then fail as
    "already active", and anything recorded into the inherited copy is
    invisible to the parent.  Workers call this once at entry, before
    installing their own collector.
    """
    global _COLLECTOR
    _COLLECTOR = None
    _PARENT.set(None)


def emit_spans(spans) -> None:
    """Merge foreign (worker) spans into the active trace, if any."""
    collector = _COLLECTOR
    if collector is not None and spans:
        collector.extend(spans)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------

def chrome_trace(spans, *, label: str = "gleipnir") -> dict:
    """A span list as Chrome trace-event JSON (object format).

    Complete events (``"ph": "X"``) with microsecond timestamps, one pid row
    per traced process (pool workers show up as their own rows), thread ids
    compacted to small ordinals per process so the viewer's lanes stay
    readable.  Loadable by ``chrome://tracing`` and https://ui.perfetto.dev.
    """
    spans = [
        item if isinstance(item, Span) else Span.from_json_dict(item)
        for item in spans
    ]
    origin = min((item.start for item in spans), default=0.0)
    tids: dict[tuple[int, int], int] = {}
    events = []
    for pid in sorted({item.pid for item in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} pid {pid}"},
            }
        )
    for item in sorted(spans, key=lambda s: s.start):
        tid = tids.setdefault((item.pid, item.tid), len(tids) + 1)
        event = {
            "name": item.name,
            "cat": item.category,
            "ph": "X",
            "ts": round((item.start - origin) * 1e6, 3),
            "dur": round(item.duration * 1e6, 3),
            "pid": item.pid,
            "tid": tid,
        }
        if item.args:
            event["args"] = item.args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans, *, label: str = "gleipnir") -> str:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    payload = chrome_trace(spans, label=label)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return str(path)
