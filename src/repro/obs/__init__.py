"""``repro.obs`` — the unified observability subsystem.

Two cross-cutting facilities shared by every layer of the pipeline:

* :mod:`repro.obs.trace` — a contextvar-nested **span tracer** (monotonic
  clocks, picklable span records, Chrome trace-event export).  Zero cost
  when no trace is active: every instrumentation point is one module-global
  load away from a shared no-op context manager.
* :mod:`repro.obs.metrics` — a process-wide **metric registry** (counters,
  gauges, fixed-bucket histograms) with mergeable snapshots — pool workers
  ship their per-job deltas back to the parent — and Prometheus text
  exposition for ``GET /v1/metrics``.

Neither facility ever changes what the pipeline computes: spans and metrics
record times and counts, so analyses with observability enabled are
bit-identical to analyses without (property-tested in
``tests/test_obs.py``).

See ``docs/observability.md`` for the span model, the metric-name table, and
a trace-viewer walkthrough.
"""

from .metrics import MetricsRegistry, get_registry, set_registry
from .trace import (
    Span,
    SpanCollector,
    chrome_trace,
    collecting,
    reset_tracing,
    span,
    tracing_active,
    write_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "SpanCollector",
    "chrome_trace",
    "collecting",
    "get_registry",
    "reset_tracing",
    "set_registry",
    "span",
    "tracing_active",
    "write_chrome_trace",
]
