"""A process-wide metric registry: counters, gauges, fixed-bucket histograms.

One API behind every counter the pipeline used to keep ad hoc (outcome-store
hits, tape-memo reuse, bound-cache evictions, SDP solve workload, engine
batch shapes, HTTP latencies):

* metrics are identified by **name + sorted label pairs** and live in a
  :class:`MetricsRegistry`; the module-level helpers (:func:`counter`,
  :func:`gauge`, :func:`histogram`) resolve through the *current* registry,
  so a worker process can swap in a scoped registry and capture exactly its
  own increments;
* snapshots are plain JSON-safe dicts and **mergeable**:
  ``registry.merge(snapshot)`` adds counter/histogram deltas and takes the
  latest gauge value — the engine merges every pool worker's per-job
  snapshot back into the parent registry, so ``/v1/metrics`` covers the
  whole process tree;
* :meth:`MetricsRegistry.render_prometheus` emits the text exposition
  format (``text/plain; version=0.0.4``) served by ``GET /v1/metrics``.

Metrics never feed back into the computation: observing a value cannot
change a bound, so instrumented runs stay bit-identical to bare ones.
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "scoped",
    "set_registry",
]

#: Default histogram buckets (seconds): latency-shaped, 100 µs .. 60 s.
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    15.0,
    60.0,
)


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (in-flight requests, queue depth)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts rendered Prometheus-style)."""

    kind = "histogram"

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        # counts[i] = observations <= buckets[i]; the +Inf bucket is `count`.
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        index = bisect.bisect_left(self.buckets, value)
        for i in range(index, len(self.counts)):
            self.counts[i] += 1


class MetricsRegistry:
    """Thread-safe home of every metric in a process (or a scoped capture)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {"kind", "help", "buckets"?, "series": {label_key: metric}}
        self._families: dict[str, dict] = {}

    # -- registration --------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str, buckets=None) -> dict:
        family = self._families.get(name)
        if family is None:
            family = {
                "kind": kind,
                "help": help_text,
                "series": {},
            }
            if buckets is not None:
                family["buckets"] = tuple(float(b) for b in buckets)
            self._families[name] = family
        elif family["kind"] != kind:
            raise ValueError(
                f"metric {name!r} is a {family['kind']}, requested as {kind}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labels: dict | None = None) -> Counter:
        with self._lock:
            family = self._family(name, "counter", help_text)
            return family["series"].setdefault(_label_key(labels), Counter())

    def gauge(self, name: str, help_text: str = "", labels: dict | None = None) -> Gauge:
        with self._lock:
            family = self._family(name, "gauge", help_text)
            return family["series"].setdefault(_label_key(labels), Gauge())

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: dict | None = None,
        buckets=DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            family = self._family(name, "histogram", help_text, buckets=buckets)
            return family["series"].setdefault(
                _label_key(labels), Histogram(family.get("buckets", buckets))
            )

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe, mergeable copy of every metric in this registry."""
        with self._lock:
            families = {}
            for name, family in self._families.items():
                series = {}
                for key, metric in family["series"].items():
                    if family["kind"] == "histogram":
                        series[key] = {
                            "counts": list(metric.counts),
                            "sum": metric.sum,
                            "count": metric.count,
                        }
                    else:
                        series[key] = metric.value
                entry = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "series": series,
                }
                if "buckets" in family:
                    entry["buckets"] = list(family["buckets"])
                families[name] = entry
            return families

    @staticmethod
    def _wire_snapshot(snapshot: dict) -> dict:
        """Snapshot with tuple label keys flattened for JSON transport."""
        wire = {}
        for name, family in snapshot.items():
            entry = dict(family)
            entry["series"] = [
                {"labels": [list(pair) for pair in key], "value": value}
                for key, value in family["series"].items()
            ]
            wire[name] = entry
        return wire

    def wire_snapshot(self) -> dict:
        """Snapshot in the list-of-series shape used on process boundaries."""
        return self._wire_snapshot(self.snapshot())

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (dict or wire shape) into this registry.

        Counters and histograms add; gauges take the merged value (last
        writer wins — worker gauges are rare and advisory).  Unknown
        families are created with the snapshot's metadata.
        """
        if not snapshot:
            return
        for name, family in snapshot.items():
            series = family["series"]
            if isinstance(series, list):  # wire shape
                items = [
                    (tuple(tuple(pair) for pair in entry["labels"]), entry["value"])
                    for entry in series
                ]
            else:
                items = list(series.items())
            kind = family["kind"]
            for key, value in items:
                labels = dict(key) if key else None
                if kind == "counter":
                    self.counter(name, family.get("help", ""), labels).inc(float(value))
                elif kind == "gauge":
                    self.gauge(name, family.get("help", ""), labels).set(float(value))
                elif kind == "histogram":
                    metric = self.histogram(
                        name,
                        family.get("help", ""),
                        labels,
                        buckets=family.get("buckets", DEFAULT_BUCKETS),
                    )
                    with self._lock:
                        counts = value["counts"]
                        if len(counts) != len(metric.counts):
                            raise ValueError(
                                f"histogram {name!r} bucket mismatch in merge"
                            )
                        for i, c in enumerate(counts):
                            metric.counts[i] += int(c)
                        metric.sum += float(value["sum"])
                        metric.count += int(value["count"])
                else:
                    raise ValueError(f"unknown metric kind {kind!r}")

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    # -- exposition ----------------------------------------------------------
    @staticmethod
    def _format_value(value: float) -> str:
        if value != value:  # NaN
            return "NaN"
        if value in (math.inf, -math.inf):
            return "+Inf" if value > 0 else "-Inf"
        if float(value).is_integer():
            return str(int(value))
        return repr(float(value))

    @staticmethod
    def _format_labels(key: tuple, extra: list | None = None) -> str:
        pairs = list(key) + (extra or [])
        if not pairs:
            return ""
        inner = ",".join(
            '{}="{}"'.format(
                k, str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            )
            for k, v in pairs
        )
        return "{" + inner + "}"

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        snapshot = self.snapshot()
        for name in sorted(snapshot):
            family = snapshot[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for key in sorted(family["series"]):
                value = family["series"][key]
                if family["kind"] == "histogram":
                    buckets = family.get("buckets", list(DEFAULT_BUCKETS))
                    for upper, count in zip(buckets, value["counts"]):
                        labels = self._format_labels(
                            key, [("le", self._format_value(upper))]
                        )
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = self._format_labels(key, [("le", "+Inf")])
                    lines.append(f"{name}_bucket{labels} {value['count']}")
                    lines.append(
                        f"{name}_sum{self._format_labels(key)} "
                        f"{self._format_value(value['sum'])}"
                    )
                    lines.append(f"{name}_count{self._format_labels(key)} {value['count']}")
                else:
                    lines.append(
                        f"{name}{self._format_labels(key)} "
                        f"{self._format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


#: The process-wide default registry.
_DEFAULT = MetricsRegistry()
_CURRENT = _DEFAULT
_CURRENT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The registry instrumentation points currently write to."""
    return _CURRENT


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the current registry (None restores the process default)."""
    global _CURRENT
    with _CURRENT_LOCK:
        previous = _CURRENT
        _CURRENT = registry if registry is not None else _DEFAULT
    return previous


class scoped:
    """Capture instrumentation into a fresh registry for the block's duration.

    Used by pool workers: each job runs under its own scoped registry, whose
    snapshot travels back to the engine and is merged into the parent's
    registry — per-job deltas, no double counting across jobs that reuse a
    pooled worker process.
    """

    def __enter__(self) -> MetricsRegistry:
        self._registry = MetricsRegistry()
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, *exc_info) -> None:
        set_registry(self._previous)


def counter(name: str, help_text: str = "", labels: dict | None = None) -> Counter:
    """A counter in the current registry (created on first use)."""
    return _CURRENT.counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: dict | None = None) -> Gauge:
    """A gauge in the current registry (created on first use)."""
    return _CURRENT.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str = "",
    labels: dict | None = None,
    buckets=DEFAULT_BUCKETS,
) -> Histogram:
    """A histogram in the current registry (created on first use)."""
    return _CURRENT.histogram(name, help_text, labels, buckets=buckets)
