"""Program semantics: ideal and noisy simulators, measurement utilities."""

from .statevector import (
    StatevectorSimulator,
    apply_gate_to_statevector,
    simulate_statevector,
)
from .density import (
    DensityMatrixSimulator,
    apply_gate_to_density,
    measurement_projectors,
    simulate_density,
)
from .noisy import (
    NoisyDensityMatrixSimulator,
    exact_program_error,
    simulate_noisy_density,
)
from .measurement import (
    apply_readout_error,
    expectation_of_diagonal,
    marginal_distribution,
    outcome_probabilities,
    probabilities_to_dict,
    sample_counts,
)

__all__ = [name for name in dir() if not name.startswith("_")]
