"""Noisy denotational semantics ``[[P]]_omega`` (Section 2.3).

The noisy semantics replaces every ideal gate superoperator with its noisy
version specified by the noise model ω; skip, sequencing, and measurement
statements are interpreted exactly as in the ideal semantics.

The resulting simulator is the ground truth against which the error logic is
property-tested: for every derivable judgment ``(ρ̂, δ) ⊢ P̃_ω ≤ ε`` and every
input within δ of ρ̂, the trace distance between ``[[P]]_ω(ρ)`` and
``[[P]](ρ)`` must be at most ε (Theorem A.1).
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import GateOp, Program
from ..config import ResourceGuard
from ..errors import SimulationError
from ..linalg.norms import trace_distance, trace_norm_distance
from ..noise.model import NoiseModel
from .density import DensityMatrixSimulator

__all__ = ["NoisyDensityMatrixSimulator", "simulate_noisy_density", "exact_program_error"]


class NoisyDensityMatrixSimulator(DensityMatrixSimulator):
    """Exact density-matrix interpreter of the noisy semantics ``[[P]]_omega``."""

    def __init__(self, noise_model: NoiseModel, guard: ResourceGuard | None = None):
        super().__init__(guard)
        self._noise_model = noise_model

    @property
    def noise_model(self) -> NoiseModel:
        return self._noise_model

    def _apply_gate(self, op: GateOp, rho: np.ndarray, n: int) -> np.ndarray:
        channel = self._noise_model.noisy_gate_channel(op.gate, op.qubits)
        embedded = channel.embed(op.qubits, n)
        return embedded.apply(rho)


def simulate_noisy_density(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    initial_state: np.ndarray | None = None,
    num_qubits: int | None = None,
    guard: ResourceGuard | None = None,
) -> np.ndarray:
    """Functional wrapper around :class:`NoisyDensityMatrixSimulator`."""
    sim = NoisyDensityMatrixSimulator(noise_model, guard)
    return sim.run(program, initial_state=initial_state, num_qubits=num_qubits)


def exact_program_error(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    initial_state: np.ndarray | None = None,
    num_qubits: int | None = None,
    guard: ResourceGuard | None = None,
    convention: str = "trace_distance",
) -> float:
    """Exact error of a noisy program on a fixed input state.

    Computes the distance between ``[[P]]_omega(rho0)`` and ``[[P]](rho0)`` by
    full density-matrix simulation.  ``convention`` selects between the
    trace distance ``0.5 * ||.||_1`` (default, the quantity the error-logic
    bounds dominate) and the full trace norm ``||.||_1``.

    This is exponential in the number of qubits and guarded by the resource
    budget — it exists for validation and for the small-program rows of the
    evaluation, not as a scalable analysis.
    """
    ideal = DensityMatrixSimulator(guard).run(
        program, initial_state=initial_state, num_qubits=num_qubits
    )
    noisy = NoisyDensityMatrixSimulator(noise_model, guard).run(
        program, initial_state=initial_state, num_qubits=num_qubits
    )
    if convention == "trace_distance":
        return trace_distance(noisy, ideal)
    if convention == "trace_norm":
        return trace_norm_distance(noisy, ideal)
    raise SimulationError(f"unknown distance convention {convention!r}")
