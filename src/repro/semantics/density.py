"""Denotational semantics of quantum programs on density matrices (Figure 3).

``[[skip]](rho) = rho``; ``[[P1; P2]](rho) = [[P2]]([[P1]](rho))``;
``[[U(q...)]](rho) = U rho U^dagger`` with the gate extended by identities;
``[[if q = |0> then P0 else P1]](rho) = [[P0]](M0 rho M0) + [[P1]](M1 rho M1)``.

The simulator is exact and therefore exponential in the number of qubits.  It
is used for:

* the ideal/noisy reference outputs against which the error logic's bounds
  are checked in tests (Theorem A.1);
* the LQR + full simulation baseline of Table 2 (whose infeasibility beyond
  ~20 qubits is exactly the point of that experiment — see the resource
  guard).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import GateOp, IfMeasure, Program, Seq, Skip
from ..config import ResourceGuard
from ..errors import SimulationError
from ..linalg.operators import embed_operator
from ..linalg.states import density_matrix, num_qubits_of, zero_state

__all__ = [
    "DensityMatrixSimulator",
    "apply_gate_to_density",
    "measurement_projectors",
    "simulate_density",
]


def measurement_projectors(qubit: int, num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
    """Projectors ``M0, M1`` for a computational-basis measurement of ``qubit``."""
    p0 = np.array([[1, 0], [0, 0]], dtype=np.complex128)
    p1 = np.array([[0, 0], [0, 1]], dtype=np.complex128)
    return (
        embed_operator(p0, [qubit], num_qubits),
        embed_operator(p1, [qubit], num_qubits),
    )


def apply_gate_to_density(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply ``U rho U^dagger`` with the gate embedded into the register."""
    unitary = embed_operator(matrix, qubits, num_qubits)
    return unitary @ rho @ unitary.conj().T


class DensityMatrixSimulator:
    """Exact density-matrix interpreter of the Figure 3 semantics."""

    def __init__(self, guard: ResourceGuard | None = None):
        self._guard = guard or ResourceGuard()

    def run(
        self,
        program: Program | Circuit,
        *,
        initial_state: np.ndarray | None = None,
        num_qubits: int | None = None,
    ) -> np.ndarray:
        """Return ``[[P]](rho0)`` as a dense density matrix."""
        ast, n = self._normalise(program, initial_state, num_qubits)
        self._guard.check_dense_qubits(n)
        rho = self._initial_density(initial_state, n)
        return self._interpret(ast, rho, n)

    # -- helpers -----------------------------------------------------------
    def _normalise(
        self,
        program: Program | Circuit,
        initial_state: np.ndarray | None,
        num_qubits: int | None,
    ) -> tuple[Program, int]:
        if isinstance(program, Circuit):
            ast = program.to_program()
            n = program.num_qubits
        else:
            ast = program
            n = program.num_qubits
        if initial_state is not None:
            n = max(n, num_qubits_of(np.asarray(initial_state)))
        if num_qubits is not None:
            n = max(n, num_qubits)
        if n == 0:
            raise SimulationError("cannot simulate a program with no qubits")
        return ast, n

    def _initial_density(self, initial_state: np.ndarray | None, n: int) -> np.ndarray:
        if initial_state is None:
            return density_matrix(zero_state(n))
        rho = density_matrix(np.asarray(initial_state, dtype=np.complex128))
        if rho.shape != (2**n, 2**n):
            raise SimulationError(
                f"initial state dimension {rho.shape} does not match {n} qubits"
            )
        return rho.copy()

    def _interpret(self, program: Program, rho: np.ndarray, n: int) -> np.ndarray:
        if isinstance(program, Skip):
            return rho
        if isinstance(program, GateOp):
            return self._apply_gate(program, rho, n)
        if isinstance(program, Seq):
            for part in program.parts:
                rho = self._interpret(part, rho, n)
            return rho
        if isinstance(program, IfMeasure):
            m0, m1 = measurement_projectors(program.qubit, n)
            branch0 = self._interpret(program.then_branch, m0 @ rho @ m0.conj().T, n)
            branch1 = self._interpret(program.else_branch, m1 @ rho @ m1.conj().T, n)
            return branch0 + branch1
        raise SimulationError(f"unknown program node {type(program).__name__}")

    def _apply_gate(self, op: GateOp, rho: np.ndarray, n: int) -> np.ndarray:
        return apply_gate_to_density(rho, op.gate.matrix, op.qubits, n)


def simulate_density(
    program: Program | Circuit,
    *,
    initial_state: np.ndarray | None = None,
    num_qubits: int | None = None,
    guard: ResourceGuard | None = None,
) -> np.ndarray:
    """Functional wrapper around :class:`DensityMatrixSimulator`."""
    return DensityMatrixSimulator(guard).run(
        program, initial_state=initial_state, num_qubits=num_qubits
    )
