"""Exact state-vector simulation of branch-free quantum programs.

This simulator is the reference implementation used to validate the MPS
approximator (which must agree exactly when the bond dimension is large
enough) and to compute ideal output distributions for the device experiments.
It scales as ``2**n`` in memory and is guarded by the resource budget.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import GateOp, Program
from ..config import ResourceGuard
from ..errors import SimulationError
from ..linalg.states import num_qubits_of, zero_state

__all__ = ["StatevectorSimulator", "apply_gate_to_statevector", "simulate_statevector"]


def apply_gate_to_statevector(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit gate to the given qubits of a state vector.

    Uses a tensor reshape/contraction rather than building the ``2**n``-sized
    embedded operator, so it is usable up to ~24 qubits.
    """
    state = np.asarray(state, dtype=np.complex128)
    n = num_qubits_of(state)
    k = len(qubits)
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"gate matrix shape {matrix.shape} does not match {k} target qubits"
        )
    tensor = state.reshape([2] * n)
    gate_tensor = matrix.reshape([2] * (2 * k))
    # Contract gate columns with the target axes of the state.
    tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(qubits)))
    # tensordot puts the gate's output axes first; restore canonical order.
    remaining = [axis for axis in range(n) if axis not in qubits]
    current_order = list(qubits) + remaining
    perm = [current_order.index(axis) for axis in range(n)]
    tensor = tensor.transpose(perm)
    return tensor.reshape(-1)


class StatevectorSimulator:
    """Pure-state simulator for branch-free programs."""

    def __init__(self, guard: ResourceGuard | None = None):
        self._guard = guard or ResourceGuard()

    def run(
        self,
        program: Program | Circuit,
        *,
        initial_state: np.ndarray | None = None,
        num_qubits: int | None = None,
    ) -> np.ndarray:
        """Simulate and return the final state vector.

        Args:
            program: a branch-free program or circuit.
            initial_state: optional initial state vector (defaults to |0...0>).
            num_qubits: register size (inferred from the program/state if omitted).
        """
        if isinstance(program, Circuit):
            n = program.num_qubits
            ast = program.to_program()
        else:
            ast = program
            n = program.num_qubits
        if initial_state is not None:
            n = max(n, num_qubits_of(np.asarray(initial_state)))
        if num_qubits is not None:
            n = max(n, num_qubits)
        if n == 0:
            raise SimulationError("cannot simulate a program with no qubits")
        self._guard.check_statevector_qubits(n)

        state = zero_state(n) if initial_state is None else np.asarray(
            initial_state, dtype=np.complex128
        ).copy()
        if state.shape != (2**n,):
            raise SimulationError(
                f"initial state of dimension {state.shape} does not match {n} qubits"
            )
        for op in ast.operations():
            state = apply_gate_to_statevector(state, op.gate.matrix, op.qubits)
        return state

    def probabilities(self, program: Program | Circuit, **kwargs) -> np.ndarray:
        """Computational-basis outcome probabilities of the final state."""
        state = self.run(program, **kwargs)
        return np.abs(state) ** 2


def simulate_statevector(
    program: Program | Circuit,
    *,
    initial_state: np.ndarray | None = None,
    num_qubits: int | None = None,
    guard: ResourceGuard | None = None,
) -> np.ndarray:
    """Functional wrapper around :class:`StatevectorSimulator`."""
    sim = StatevectorSimulator(guard)
    return sim.run(program, initial_state=initial_state, num_qubits=num_qubits)


def _gate_op_matrix(op: GateOp) -> np.ndarray:  # pragma: no cover - convenience
    return op.gate.matrix
