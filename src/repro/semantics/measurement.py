"""Measurement utilities: outcome distributions, sampling, readout error.

These are used by the hardware emulator (Table 3) to turn simulated quantum
states into the classical probability distributions and finite-shot counts a
real device produces.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import SimulationError
from ..linalg.states import density_matrix, num_qubits_of

__all__ = [
    "outcome_probabilities",
    "probabilities_to_dict",
    "sample_counts",
    "apply_readout_error",
    "marginal_distribution",
    "expectation_of_diagonal",
]


def outcome_probabilities(state: np.ndarray) -> np.ndarray:
    """Computational-basis outcome probabilities of a state (vector or density)."""
    state = np.asarray(state, dtype=np.complex128)
    if state.ndim == 1:
        probs = np.abs(state) ** 2
    else:
        probs = np.real(np.diag(density_matrix(state))).copy()
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise SimulationError("state has zero norm")
    return probs / total


def probabilities_to_dict(probs: np.ndarray, *, cutoff: float = 0.0) -> dict[str, float]:
    """Convert a probability vector into a bitstring -> probability dict."""
    probs = np.asarray(probs, dtype=float)
    n = num_qubits_of(probs)
    out: dict[str, float] = {}
    for index, value in enumerate(probs):
        if value > cutoff:
            out[format(index, f"0{n}b")] = float(value)
    return out


def sample_counts(
    probs: np.ndarray | Mapping[str, float],
    shots: int,
    *,
    rng: np.random.Generator | None = None,
) -> dict[str, int]:
    """Sample measurement counts from an outcome distribution."""
    rng = rng or np.random.default_rng()
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if isinstance(probs, Mapping):
        keys = sorted(probs)
        values = np.array([probs[k] for k in keys], dtype=float)
        values = values / values.sum()
        draws = rng.multinomial(shots, values)
        return {k: int(c) for k, c in zip(keys, draws) if c > 0}
    probs = np.asarray(probs, dtype=float)
    probs = probs / probs.sum()
    n = num_qubits_of(probs)
    draws = rng.multinomial(shots, probs)
    return {
        format(index, f"0{n}b"): int(count)
        for index, count in enumerate(draws)
        if count > 0
    }


def apply_readout_error(
    probs: np.ndarray, readout_error: Sequence[float] | Mapping[int, float]
) -> np.ndarray:
    """Apply independent per-qubit symmetric readout (assignment) errors.

    ``readout_error[q]`` is the probability that qubit ``q``'s outcome is
    flipped when read out.  The distribution is transformed by the tensor
    product of 2x2 confusion matrices.
    """
    probs = np.asarray(probs, dtype=float)
    n = num_qubits_of(probs)
    if isinstance(readout_error, Mapping):
        errors = [float(readout_error.get(q, 0.0)) for q in range(n)]
    else:
        errors = [float(e) for e in readout_error]
        if len(errors) != n:
            raise SimulationError(
                f"readout_error has {len(errors)} entries for {n} qubits"
            )
    tensor = probs.reshape([2] * n)
    for qubit, error in enumerate(errors):
        if error == 0.0:
            continue
        confusion = np.array([[1 - error, error], [error, 1 - error]], dtype=float)
        tensor = np.tensordot(confusion, tensor, axes=([1], [qubit]))
        tensor = np.moveaxis(tensor, 0, qubit)
    return tensor.reshape(-1)


def marginal_distribution(probs: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Marginal outcome distribution on a subset of qubits (in given order)."""
    probs = np.asarray(probs, dtype=float)
    n = num_qubits_of(probs)
    qubits = [int(q) for q in qubits]
    tensor = probs.reshape([2] * n)
    other = [q for q in range(n) if q not in qubits]
    tensor = tensor.transpose(qubits + other)
    tensor = tensor.reshape(2 ** len(qubits), -1)
    return tensor.sum(axis=1)


def expectation_of_diagonal(probs: np.ndarray, values: np.ndarray) -> float:
    """Expectation of a diagonal observable given an outcome distribution."""
    probs = np.asarray(probs, dtype=float)
    values = np.asarray(values, dtype=float)
    if probs.shape != values.shape:
        raise SimulationError("probability and value vectors must have equal shape")
    return float(np.dot(probs, values))
