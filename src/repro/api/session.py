"""The session facade: one object that fronts every way of running analyses.

:class:`AnalysisSession` owns the wiring that the experiment drivers,
benchmarks, and examples used to re-plumb individually — engine worker
counts, result stores, shared bound caches, resume semantics, and (new) a
remote transport to a running ``gleipnir-serve``.  All surfaces return the
same typed, frozen :class:`AnalysisOutcome`.

Local sessions execute through the :class:`~repro.engine.pool.AnalysisEngine`
(content-addressed dedupe, process-pool sharding, family-ordered warm
starts); remote sessions speak the ``/v1`` wire format through
:class:`repro.api.Client` (batch submit + long-poll result push).  The two
transports are bit-identical for the same jobs: the engine executes both.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import time
from collections.abc import Iterator, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import Program
from ..config import AnalysisConfig
from ..core.analyzer import analyze_program
from ..core.derivation import Derivation
from ..engine.pool import (
    AnalysisEngine,
    _wall_clock_budget,
    job_result_from_analysis,
)
from ..engine.service import TERMINAL_STATUSES, AnalysisService
from ..engine.spec import AnalysisJob, ComparisonJob, JobResult
from ..errors import EngineError, ResourceLimitExceeded
from ..linalg.channels import QuantumChannel
from ..noise.model import NoiseModel
from ..sdp.diamond import DiamondNormBound, gate_error_bound
from .client import Client

__all__ = [
    "AnalysisOutcome",
    "AnalysisSession",
    "add_session_arguments",
    "session_from_args",
    "trace_to_file",
]


@dataclasses.dataclass(frozen=True)
class AnalysisOutcome:
    """The typed result every ``repro.api`` surface returns.

    A frozen value object mirroring the engine's wire-level
    :class:`~repro.engine.spec.JobResult` — plus, for local single analyses
    that asked for it, the in-memory derivation tree.

    Attributes:
        name: the job's label.
        fingerprint: content address of the job (the handle on every surface).
        status: ``"ok"`` (bound certified), ``"timeout"`` (resource budget
            fired), or ``"error"``.
        bound: the certified error bound (None unless ``status == "ok"``).
        final_delta: accumulated MPS truncation bound.
        num_gates / num_branches: size of the analysed derivation.
        elapsed_seconds: *server-side* wall-clock execution time of the
            analysis itself — on remote sessions this is the time the engine
            spent, not the time the client waited (queueing, batching, and
            long-poll park time are excluded).
        round_trip_seconds: client-observed wall clock from submission to
            result receipt (remote sessions only; None locally).
        timings: structured per-phase breakdown from the analyzer
            (``total_seconds``, ``prefill_walk_seconds``,
            ``prefill_solve_seconds``, ``replay_seconds``, ``solve_classes``);
            empty on legacy records.
        sdp_solves / sdp_cache_hits / sdp_dominance_hits / scheduled_solves:
            SDP workload statistics.
        mps_walks: MPS evolutions through the program (1 on the single-pass
            pipeline).
        mps_width: bond dimension used.
        noise_model: name of the noise model.
        tape_steps_reused: top-level program steps the scheduler answered
            from the replay-tape prefix memo instead of re-walking.
        error: failure message when ``status != "ok"``.
        derivation: the derivation tree (only from
            ``AnalysisSession.analyze(..., derivation=True)`` on a local
            session; never crosses the wire).
    """

    name: str
    fingerprint: str
    status: str
    bound: float | None
    final_delta: float | None
    num_gates: int
    num_branches: int
    elapsed_seconds: float
    sdp_solves: int
    sdp_cache_hits: int
    sdp_dominance_hits: int
    scheduled_solves: int
    mps_walks: int
    mps_width: int
    noise_model: str
    tape_steps_reused: int = 0
    #: Comparison outcomes only: metric name, its certification tier, and —
    #: for noise-model A/B jobs — the per-side certified bounds behind the
    #: drift in ``bound``.  Empty/None on plain analyses.
    metric: str = ""
    metric_tier: str = ""
    value_a: float | None = None
    value_b: float | None = None
    error: str | None = None
    timings: dict = dataclasses.field(default_factory=dict)
    round_trip_seconds: float | None = None
    derivation: Derivation | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @property
    def certified(self) -> bool:
        """Whether the analysis completed and ``bound`` carries a certified value."""
        return self.status == "ok"

    @property
    def ok(self) -> bool:
        return self.certified

    def raise_for_status(self) -> "AnalysisOutcome":
        """Return self, or raise :class:`EngineError` for failed analyses."""
        if not self.certified:
            raise EngineError(
                f"analysis {self.name!r} {self.status}: {self.error or 'no detail'}"
            )
        return self

    def gate_contributions(self):
        """Per-gate judgments (requires ``derivation=True`` at analyze time)."""
        if self.derivation is None:
            raise EngineError(
                "this outcome carries no derivation tree; request one with "
                "AnalysisSession.analyze(..., derivation=True) on a local session"
            )
        return self.derivation.gate_contributions()

    @classmethod
    def from_job_result(
        cls,
        result: JobResult,
        *,
        derivation: Derivation | None = None,
        round_trip_seconds: float | None = None,
    ) -> "AnalysisOutcome":
        return cls(
            name=result.name,
            fingerprint=result.fingerprint,
            status=result.status,
            bound=result.error_bound,
            final_delta=result.final_delta,
            num_gates=result.num_gates,
            num_branches=result.num_branches,
            elapsed_seconds=result.elapsed_seconds,
            sdp_solves=result.sdp_solves,
            sdp_cache_hits=result.sdp_cache_hits,
            sdp_dominance_hits=result.sdp_dominance_hits,
            scheduled_solves=result.scheduled_solves,
            mps_walks=result.mps_walks,
            mps_width=result.mps_width,
            noise_model=result.noise_model,
            tape_steps_reused=result.tape_steps_reused,
            metric=result.metric,
            metric_tier=result.metric_tier,
            value_a=result.value_a,
            value_b=result.value_b,
            error=result.error,
            timings=dict(result.timings or {}),
            round_trip_seconds=round_trip_seconds,
            derivation=derivation,
        )

    @classmethod
    def from_wire_entry(
        cls, entry: dict, *, round_trip_seconds: float | None = None
    ) -> "AnalysisOutcome":
        """An outcome from a service status entry (``/v1`` or in-process).

        ``entry["result"]["elapsed_seconds"]`` is the server-side execution
        time; ``round_trip_seconds`` is the client-measured submission-to-
        receipt clock remote transports pass in (they are only equal when
        nothing queued).
        """
        payload = entry.get("result")
        if payload is not None:
            return cls.from_job_result(
                JobResult.from_json_dict(payload),
                round_trip_seconds=round_trip_seconds,
            )
        # Batcher-level failures carry no JobResult; synthesize one.
        return cls.from_job_result(
            JobResult(
                fingerprint=entry["fingerprint"],
                name=entry.get("name", "job"),
                status="error",
                error=entry.get("error", f"job finished as {entry.get('status')!r}"),
            ),
            round_trip_seconds=round_trip_seconds,
        )

    def to_json_dict(self) -> dict:
        """The wire-shape record (derivation excluded — it never serializes)."""
        # Field-by-field, not dataclasses.asdict: asdict would deep-copy the
        # whole derivation tree just to be discarded.
        payload = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "derivation"
        }
        payload["error_bound"] = payload.pop("bound")
        return payload


class AnalysisSession:
    """The front door: analyses in, :class:`AnalysisOutcome` values out.

    A session is a context manager owning either a **local** engine (process
    pool, optional result store + shared bound cache) or a **remote**
    transport to a ``gleipnir-serve`` instance:

    >>> with AnalysisSession(workers=4, store="results.jsonl") as session:
    ...     outcomes = session.analyze_batch(jobs)

    >>> with AnalysisSession(remote="http://127.0.0.1:8780") as session:
    ...     outcome = session.analyze(circuit, noise)

    Args:
        workers: local engine process-pool size (1 = inline execution).
        store: result-store path or :class:`~repro.engine.store.ResultStore`
            (enables ``resume``).
        cache_dir: shared on-disk gate-bound cache directory.
        config: default :class:`AnalysisConfig` for jobs built by this
            session (per-call ``config=`` overrides it).
        resume: answer already-completed fingerprints from the store instead
            of re-executing them.
        outcomes: whole-outcome store path or
            :class:`~repro.engine.outcomes.OutcomeStore`; fingerprints it
            holds answer from one lookup (no MPS walk, no SDP work) and
            executed successes are written back with their dual certificates.
        batch_window_ms: cross-job SDP batch-fusion window in milliseconds
            (0 disables fusion — the default; see
            :class:`~repro.engine.pool.AnalysisEngine`).
        batch_window_max_classes: cap on the solve classes one fusion window
            may pool.
        remote: base URL of a running service; mutually exclusive with the
            local engine knobs.
        client: a pre-built :class:`Client` (overrides ``remote``).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        store=None,
        cache_dir: str | None = None,
        config: AnalysisConfig | None = None,
        resume: bool = False,
        outcomes=None,
        batch_window_ms: float = 0.0,
        batch_window_max_classes: int = 4096,
        remote: str | None = None,
        client: Client | None = None,
    ):
        self.config = config or AnalysisConfig()
        self.resume = bool(resume)
        self._closed = False
        self._service: AnalysisService | None = None
        if remote is not None or client is not None:
            if (
                workers != 1
                or store is not None
                or cache_dir is not None
                or outcomes is not None
                or batch_window_ms != 0.0
            ):
                raise EngineError(
                    "remote sessions delegate workers/store/cache_dir/outcomes/"
                    "batch_window_ms to the server; configure those on "
                    "gleipnir-serve instead"
                )
            if isinstance(remote, str) and "," in remote:
                # A comma-separated list names a sharded replica deployment
                # (in shard order); the Client routes by fingerprint.
                remote = [url.strip() for url in remote.split(",") if url.strip()]
            self._client: Client | None = client or Client(remote)
            self._engine: AnalysisEngine | None = None
        else:
            self._client = None
            self._engine = AnalysisEngine(
                workers=workers,
                store=store,
                cache_dir=cache_dir,
                outcomes=outcomes,
                batch_window_ms=batch_window_ms,
                batch_window_max_classes=batch_window_max_classes,
            )

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_remote(self) -> bool:
        return self._client is not None

    @property
    def engine(self) -> AnalysisEngine:
        if self._engine is None:
            raise EngineError("remote sessions have no local engine")
        return self._engine

    @property
    def client(self) -> Client:
        if self._client is None:
            raise EngineError("local sessions have no HTTP client")
        return self._client

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.stop()
            self._service = None

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this AnalysisSession is closed")

    # -- job construction --------------------------------------------------
    def job(
        self,
        program: Circuit | Program,
        noise_model: NoiseModel,
        *,
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
    ) -> AnalysisJob:
        """A content-addressed job using the session's default configuration."""
        return AnalysisJob.from_circuit(
            program,
            noise_model,
            config=config or self.config,
            initial_bits=initial_bits,
            name=name,
        )

    def comparison_job(
        self,
        a,
        b,
        c=None,
        *,
        metric: str | None = None,
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
    ) -> ComparisonJob:
        """A content-addressed comparison job (see :meth:`compare` for shapes)."""
        if isinstance(a, QuantumChannel):
            if not isinstance(b, QuantumChannel) or c is not None:
                raise EngineError(
                    "channel comparisons take exactly two QuantumChannel values"
                )
            return ComparisonJob.from_channels(
                a,
                b,
                metric=metric or "diamond_norm",
                config=config or self.config,
                name=name,
            )
        if not isinstance(b, NoiseModel) or not isinstance(c, NoiseModel):
            raise EngineError(
                "compare() takes (channel_a, channel_b) or "
                "(program, noise_model_a, noise_model_b)"
            )
        return ComparisonJob.from_noise_models(
            a,
            b,
            c,
            metric=metric or "bound_drift",
            config=config or self.config,
            initial_bits=initial_bits,
            name=name,
        )

    # -- analysis ----------------------------------------------------------
    def analyze(
        self,
        program: Circuit | Program,
        noise_model: NoiseModel,
        *,
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
        derivation: bool = False,
    ) -> AnalysisOutcome:
        """Analyse one program and return its outcome.

        With ``derivation=True`` (local sessions only) the analysis runs
        in-process with derivation collection enabled and the outcome carries
        the full tree; the certified bound is identical to the engine path —
        collecting the derivation only records judgments, it never changes
        them.
        """
        self._check_open()
        job = self.job(
            program, noise_model, config=config, initial_bits=initial_bits, name=name
        )
        if derivation:
            if self.is_remote:
                raise EngineError(
                    "derivation collection is local-only: derivation trees do "
                    "not serialize across the wire"
                )
            return self._analyze_with_derivation(job)
        return self.analyze_batch([job])[0]

    def _analyze_with_derivation(self, job: AnalysisJob) -> AnalysisOutcome:
        """The in-process path of ``analyze(derivation=True)``.

        Mirrors :func:`repro.engine.pool.execute_job` — same shared bound
        cache, same wall-clock budget, same failure capture — except that the
        derivation tree is collected and attached to the outcome (it cannot
        ride on the flat engine record).
        """
        run_config = job.config.replace(collect_derivation=True)
        if self.engine.cache_dir is not None:
            run_config.sdp.persistent_cache_path = self.engine.cache_dir
        fingerprint = job.fingerprint()
        start = time.perf_counter()
        try:
            with _wall_clock_budget(run_config.guard.max_seconds):
                result = analyze_program(
                    job.program,
                    job.noise_model,
                    config=run_config,
                    initial_bits=job.initial_bits,
                    num_qubits=job.num_qubits,
                    program_name=job.name,
                )
        except ResourceLimitExceeded as exc:
            return AnalysisOutcome.from_job_result(
                JobResult(
                    fingerprint=fingerprint,
                    name=job.name,
                    status="timeout",
                    elapsed_seconds=time.perf_counter() - start,
                    error=str(exc),
                )
            )
        except Exception as exc:
            # Same failure contract as execute_job: any failure becomes a
            # status="error" outcome, never a raw exception from one facade
            # path but not the other.
            return AnalysisOutcome.from_job_result(
                JobResult(
                    fingerprint=fingerprint,
                    name=job.name,
                    status="error",
                    elapsed_seconds=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        return AnalysisOutcome.from_job_result(
            job_result_from_analysis(fingerprint, job.name, result),
            derivation=result.derivation,
        )

    # -- comparison --------------------------------------------------------
    def compare(
        self,
        a,
        b,
        c=None,
        *,
        metric: str | None = None,
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
    ) -> AnalysisOutcome:
        """Compare two channels, or two noise models over one program.

        Two call shapes, disambiguated by the first argument:

        * ``compare(channel_a, channel_b, metric="diamond_norm")`` — a
          registered channel metric of the pair (default: the certified
          comparative diamond norm);
        * ``compare(circuit, noise_model_a, noise_model_b)`` — a noise-model
          A/B diff: the full certified analysis runs under each model and the
          outcome's ``bound`` is the drift ``|bound_a - bound_b|``, with the
          per-side bounds in ``value_a``/``value_b`` (default metric:
          ``bound_drift``).

        Both shapes execute through the engine (or the remote service), so
        comparisons share dedupe, the outcome cache, and sharding with
        analyses; remote and in-process results are bit-identical.
        """
        job = self.comparison_job(
            a,
            b,
            c,
            metric=metric,
            config=config,
            initial_bits=initial_bits,
            name=name,
        )
        return self.analyze_batch([job])[0]

    def compare_batch(
        self, jobs: Sequence[ComparisonJob]
    ) -> list[AnalysisOutcome]:
        """Execute a batch of comparison jobs; outcomes aligned with ``jobs``.

        A convenience alias of :meth:`analyze_batch` (the engine executes
        mixed batches of analyses and comparisons just the same), kept
        separate so call sites read as what they do.
        """
        return self.analyze_batch(jobs)

    def analyze_batch(
        self, jobs: Sequence[AnalysisJob | ComparisonJob]
    ) -> list[AnalysisOutcome]:
        """Execute a batch; outcomes are aligned with ``jobs``.

        Duplicate jobs (same fingerprint) share one execution on both
        transports; with ``resume`` and a store, completed fingerprints are
        answered without re-running.
        """
        self._check_open()
        jobs = list(jobs)
        if not jobs:
            return []
        if self.is_remote:
            return self._remote_batch(jobs)
        report = self.engine.run(jobs, resume=self.resume)
        return [AnalysisOutcome.from_job_result(result) for result in report.results]

    def _wait_remote_entry(self, fingerprint: str, deadline: float | None) -> dict:
        """Chain long-poll windows until ``fingerprint`` finishes.

        ``deadline`` is an absolute ``time.monotonic()`` deadline (None =
        wait as long as the job takes, like the local engine).  The session's
        ``closed`` state is re-checked between windows so closing the session
        releases remote waiters within one long-poll window.
        """
        while True:
            if self._closed:
                raise EngineError(
                    f"session closed while waiting for remote job {fingerprint}"
                )
            window = self.client.max_wait
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"job {fingerprint} still pending at timeout")
                window = min(window, remaining)
            entry = self.client.status(fingerprint, wait=window)
            if entry["status"] in TERMINAL_STATUSES:
                return entry

    def _remote_batch(self, jobs: list[AnalysisJob]) -> list[AnalysisOutcome]:
        submitted = time.monotonic()
        entries = self.client.submit(jobs)
        outcomes: dict[str, AnalysisOutcome] = {}
        for entry in entries:
            fingerprint = entry["fingerprint"]
            if fingerprint in outcomes:
                continue
            if entry["status"] not in TERMINAL_STATUSES:
                entry = self._wait_remote_entry(fingerprint, None)
            outcomes[fingerprint] = AnalysisOutcome.from_wire_entry(
                entry, round_trip_seconds=time.monotonic() - submitted
            )
        return [outcomes[entry_out["fingerprint"]] for entry_out in entries]

    def as_completed(
        self, jobs: Sequence[AnalysisJob], *, timeout: float | None = None
    ) -> Iterator[tuple[int, AnalysisOutcome]]:
        """Stream ``(index, outcome)`` pairs in completion order.

        ``index`` refers to the position in ``jobs``; duplicate submissions
        each get their own pair (sharing one execution).  Local sessions
        stream through the in-process :class:`AnalysisService` (condition-
        variable wakeups, no polling); remote sessions hold one long-poll per
        unique fingerprint.
        """
        self._check_open()
        jobs = list(jobs)
        if not jobs:
            return
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        if self.is_remote:
            yield from self._remote_as_completed(jobs, deadline)
        else:
            yield from self._local_as_completed(jobs, deadline)

    def _ensure_service(self) -> AnalysisService:
        if self._service is None:
            service = AnalysisService(
                self.engine, batch_window=0.01, resume=self.resume
            )
            service.start()
            self._service = service
        return self._service

    def _local_as_completed(self, jobs, deadline):
        service = self._ensure_service()
        indices_by_fp: dict[str, list[int]] = {}
        for index, job in enumerate(jobs):
            entry = service.submit_job(job)
            indices_by_fp.setdefault(entry["fingerprint"], []).append(index)
        pending = set(indices_by_fp)
        while pending:
            window = 60.0
            if deadline is not None:
                window = deadline - time.monotonic()
                if window <= 0:
                    raise TimeoutError(f"{len(pending)} job(s) still pending at timeout")
            fingerprint = service.wait_any(pending, timeout=window)
            if fingerprint is None:
                if service.stopped:
                    # wait_any returns immediately from now on; spinning here
                    # would peg a core without ever finishing the jobs.
                    raise EngineError(
                        f"session closed with {len(pending)} job(s) still pending"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(f"{len(pending)} job(s) still pending at timeout")
                continue
            pending.discard(fingerprint)
            outcome = AnalysisOutcome.from_wire_entry(service.status(fingerprint))
            for index in indices_by_fp[fingerprint]:
                yield index, outcome

    def _remote_as_completed(self, jobs, deadline):
        from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
        from concurrent.futures import wait as futures_wait

        submitted = time.monotonic()
        entries = self.client.submit(jobs)
        indices_by_fp: dict[str, list[int]] = {}
        for index, entry in enumerate(entries):
            indices_by_fp.setdefault(entry["fingerprint"], []).append(index)
        with ThreadPoolExecutor(
            max_workers=min(8, len(indices_by_fp)), thread_name_prefix="repro-api-wait"
        ) as pool:
            # Each waiter enforces the shared deadline itself (raising
            # TimeoutError at most one long-poll window past it), so the
            # executor's exit never blocks on un-cancellable futures and the
            # caller's timeout is honoured end to end.
            remaining = {
                pool.submit(self._wait_remote_entry, fingerprint, deadline): fingerprint
                for fingerprint in indices_by_fp
            }
            outstanding = set(remaining)
            while outstanding:
                done, outstanding = futures_wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    fingerprint = remaining[future]
                    outcome = AnalysisOutcome.from_wire_entry(
                        future.result(),
                        round_trip_seconds=time.monotonic() - submitted,
                    )
                    for index in indices_by_fp[fingerprint]:
                        yield index, outcome

    # -- primitives --------------------------------------------------------
    def gate_bound(
        self,
        gate_matrix: np.ndarray,
        noise_channel: QuantumChannel | None,
        rho_local: np.ndarray,
        delta: float,
        *,
        noise_after_gate: bool | None = None,
        config: AnalysisConfig | None = None,
    ) -> DiamondNormBound:
        """Certified (ρ̂, δ)-diamond-norm bound for one noisy gate application.

        A session-configured wrapper over
        :func:`repro.sdp.diamond.gate_error_bound`; always computed locally
        (the primitive is cheap and its certificate does not serialize).
        """
        self._check_open()
        cfg = config or self.config
        after = cfg.noise_after_gate if noise_after_gate is None else bool(noise_after_gate)
        return gate_error_bound(
            gate_matrix,
            noise_channel,
            rho_local,
            delta,
            noise_after_gate=after,
            config=cfg.sdp,
        )

    # -- introspection -----------------------------------------------------
    def capabilities(self) -> dict:
        """What this session can do (mirrors ``GET /v1/capabilities`` remotely)."""
        self._check_open()
        if self.is_remote:
            payload = self.client.capabilities()
            payload["transport"] = "http"
            return payload
        from ..engine.service import API_VERSION
        from ..engine.spec import JOB_SCHEMA_VERSION
        from ..metrics import metric_capabilities

        return {
            "transport": "local",
            "api": {"version": API_VERSION, "versions": [API_VERSION]},
            "job_schema_version": JOB_SCHEMA_VERSION,
            "job_kinds": ["analysis_job", "comparison_job"],
            "metrics": metric_capabilities(),
            "engine": self.engine.stats(),
        }


# ---------------------------------------------------------------------------
# Shared CLI wiring (the flags every driver used to re-plumb by hand)
# ---------------------------------------------------------------------------

def add_session_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the standard session flags on an ``argparse`` parser."""
    group = parser.add_argument_group("analysis session")
    group.add_argument(
        "--workers", type=int, default=1, help="engine process-pool size (1 = inline)"
    )
    group.add_argument(
        "--resume", action="store_true", help="skip jobs already completed in --store"
    )
    group.add_argument(
        "--store", type=str, default=None, help="JSONL result store (enables --resume)"
    )
    group.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="shared on-disk bound cache for the engine workers",
    )
    group.add_argument(
        "--outcomes",
        type=str,
        default=None,
        help="whole-outcome store (JSONL); warm re-submissions answer from one lookup",
    )
    group.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="cross-job SDP fusion window in milliseconds (0 disables fusion)",
    )
    group.add_argument(
        "--batch-window-max-classes",
        type=int,
        default=4096,
        help="max solve classes pooled by one fusion window",
    )
    group.add_argument(
        "--remote",
        type=str,
        default=None,
        help="submit to a running gleipnir-serve at this URL instead of running "
        "locally; a comma-separated list of replica URLs (in shard order) "
        "enables client-side fingerprint sharding",
    )
    group.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="OUT.json",
        help="write a Chrome trace-event JSON of the run (load in Perfetto)",
    )
    group.add_argument(
        "--log-level",
        type=str,
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="stdlib logging level for progress/diagnostic output",
    )


def session_from_args(
    args: argparse.Namespace, *, config: AnalysisConfig | None = None
) -> AnalysisSession:
    """Build the session a parsed command line describes.

    Mixing ``--remote`` with the local engine flags is an error, not a silent
    drop: the server owns its own workers/store/cache configuration.
    """
    remote = getattr(args, "remote", None)
    if remote:
        offending = [
            flag
            for flag, is_set in (
                ("--workers", getattr(args, "workers", 1) != 1),
                ("--store", getattr(args, "store", None) is not None),
                ("--cache-dir", getattr(args, "cache_dir", None) is not None),
                ("--outcomes", getattr(args, "outcomes", None) is not None),
                ("--resume", bool(getattr(args, "resume", False))),
                ("--batch-window-ms", getattr(args, "batch_window_ms", 0.0) != 0.0),
            )
            if is_set
        ]
        if offending:
            raise EngineError(
                f"{', '.join(offending)} cannot be combined with --remote: "
                "configure workers/store/cache/resume on gleipnir-serve instead"
            )
        return AnalysisSession(remote=remote, config=config)
    return AnalysisSession(
        workers=getattr(args, "workers", 1),
        store=getattr(args, "store", None),
        cache_dir=getattr(args, "cache_dir", None),
        outcomes=getattr(args, "outcomes", None),
        resume=getattr(args, "resume", False),
        batch_window_ms=getattr(args, "batch_window_ms", 0.0),
        batch_window_max_classes=getattr(args, "batch_window_max_classes", 4096),
        config=config,
    )


@contextlib.contextmanager
def trace_to_file(path: str | None, *, label: str = "gleipnir"):
    """Collect spans for the enclosed block and write a Chrome trace on exit.

    ``path`` of ``None``/empty is a no-op (so CLIs can pass ``args.trace``
    straight through).  The trace file is written even when the block raises,
    so partial runs can still be inspected in Perfetto.
    """
    if not path:
        yield None
        return
    from ..obs.trace import collecting, write_chrome_trace

    with collecting() as collector:
        try:
            yield collector
        finally:
            write_chrome_trace(path, collector.spans(), label=label)
