"""A thin HTTP client for the versioned ``/v1`` surface of ``gleipnir-serve``.

The client speaks exactly the wire format documented in
:mod:`repro.engine.service` (and ``docs/api.md``):

* ``submit()`` posts a batch of :class:`~repro.engine.spec.AnalysisJob`
  payloads to ``POST /v1/batches``;
* ``status()`` reads one job entry, optionally with a **long-poll**
  ``wait=`` window — the server blocks on its condition variable and pushes
  the result in the same response, so a completed job costs exactly one
  request;
* ``wait()`` chains long-poll windows until the job finishes or the caller's
  deadline passes;
* ``capabilities()`` performs ``GET /v1/capabilities`` discovery.

**Shard-aware routing**: handed a *list* of base URLs (one per replica of a
``--replicas N`` deployment, in shard order), the client computes the same
``int(fingerprint, 16) % N`` function the router and supervisor use —
``submit()`` splits a batch into per-shard sub-batches and splices the
entries back into submission order; ``status()``/``wait()`` go straight to
the owning replica.  With one URL nothing changes, so pointing a sharded
client at the router (which re-shards internally) also works.

**Retries**: ``Client(retries=k)`` re-attempts *transient connection
failures* (refused/reset/unreachable — never HTTP error responses, which are
authoritative answers) up to ``k`` extra times with exponential backoff plus
jitter.  Off by default; every attempt counts in ``requests_sent``.

Errors come back as structured envelopes and are re-raised as the exact
:class:`~repro.errors.ReproError` subclass the server recorded
(:func:`repro.errors.error_from_envelope`), so remote and in-process callers
share one ``except`` vocabulary.  ``requests_sent`` counts HTTP round trips,
which the test suite uses to prove the long-poll path needs no client-side
polling.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Sequence

from ..engine.spec import AnalysisJob, ComparisonJob, job_from_json_dict
from ..errors import EngineError, error_from_envelope

__all__ = ["Client"]

#: Statuses that mean "no further transition will happen".  Mirrors
#: ``repro.engine.service.TERMINAL_STATUSES`` without importing the service
#: (a pure client install must not pull in the engine).
_TERMINAL = ("done", "failed")


class Client:
    """HTTP access to a running ``gleipnir-serve`` (the ``/v1`` wire format).

    Args:
        base_url: service root (``"http://127.0.0.1:8780"``) or a list of
            replica roots **in shard order** for fingerprint-sharded routing.
        timeout: socket timeout for plain (non-waiting) requests.
        max_wait: largest single long-poll window requested from the server
            (the server additionally clamps to its own advertised limit).
        retries: extra attempts after a transient connection failure
            (0 = fail fast, the default).  Exponential backoff with jitter;
            HTTP error responses are never retried.
        retry_base_delay: first backoff delay in seconds; attempt ``k``
            sleeps ``retry_base_delay * 2**k`` plus up to 50% jitter.
    """

    def __init__(
        self,
        base_url: str | Sequence[str],
        *,
        timeout: float = 30.0,
        max_wait: float = 60.0,
        retries: int = 0,
        retry_base_delay: float = 0.1,
    ):
        if isinstance(base_url, str):
            urls = [base_url]
        else:
            urls = list(base_url)
        if not urls:
            raise EngineError("Client needs at least one base URL")
        #: Replica roots in shard order; one entry means no sharding.
        self.base_urls = [str(url).rstrip("/") for url in urls]
        self.base_url = self.base_urls[0]
        self.timeout = float(timeout)
        self.max_wait = float(max_wait)
        if int(retries) < 0:
            raise EngineError("retries must be >= 0")
        self.retries = int(retries)
        self.retry_base_delay = float(retry_base_delay)
        #: HTTP round trips performed by this client, counting every retry
        #: attempt (diagnostics/tests).
        self.requests_sent = 0

    # -- sharding ------------------------------------------------------------
    def shard_of(self, fingerprint: str) -> int:
        """The replica index owning ``fingerprint`` (0 when unsharded)."""
        if len(self.base_urls) == 1:
            return 0
        try:
            return int(fingerprint, 16) % len(self.base_urls)
        except ValueError:
            return 0  # let the first replica answer with its canonical 404

    def _url_for(self, fingerprint: str) -> str:
        return self.base_urls[self.shard_of(fingerprint)]

    # -- transport ---------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
        base_url: str | None = None,
    ) -> dict:
        base = base_url or self.base_url
        data = json.dumps(payload).encode() if payload is not None else None
        attempt = 0
        while True:
            request = urllib.request.Request(
                base + path,
                data=data,
                headers={"Content-Type": "application/json"},
                method=method,
            )
            self.requests_sent += 1
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout
                ) as response:
                    return json.loads(response.read() or b"null")
            except urllib.error.HTTPError as error:
                # An HTTP response is an authoritative answer — never retried.
                try:
                    envelope = json.loads(error.read() or b"null")
                except (json.JSONDecodeError, ValueError):
                    envelope = None
                raise error_from_envelope(envelope, status=error.code) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                if attempt >= self.retries:
                    raise EngineError(
                        f"cannot reach analysis service at {base}: {reason}"
                    ) from exc
                # Exponential backoff with jitter: 2**attempt spreads load,
                # the random half-share prevents synchronized retry storms.
                delay = self.retry_base_delay * (2**attempt)
                time.sleep(delay * (1.0 + 0.5 * random.random()))
                attempt += 1

    # -- API ---------------------------------------------------------------
    def capabilities(self) -> dict:
        """Service discovery (``GET /v1/capabilities``) from the first replica."""
        return self._request("GET", "/v1/capabilities")

    def submit(self, jobs: Sequence[AnalysisJob | ComparisonJob | dict]) -> list[dict]:
        """Submit one batch; returns the aligned list of status entries.

        ``jobs`` may hold :class:`AnalysisJob` / :class:`ComparisonJob`
        values or raw job payload dicts (any registered ``kind``).
        Validation is all-or-nothing on the server: a rejected batch
        executes nothing.  Against multiple replicas the batch is split by
        fingerprint shard and the entries re-assembled in submission order
        (validation then happens client-side first, preserving
        all-or-nothing across shards).
        """
        payloads = [
            job.to_json_dict() if hasattr(job, "to_json_dict") else dict(job)
            for job in jobs
        ]
        if len(self.base_urls) == 1:
            return self._request("POST", "/v1/batches", {"jobs": payloads})["jobs"]
        # Fingerprint client-side with the jobs' own content addressing — the
        # same function the replica supervisor shards stores by — so a job
        # always reaches the replica that owns (and may have cached) it.
        fingerprints = [
            job.fingerprint()
            if hasattr(job, "fingerprint")
            else job_from_json_dict(payload).fingerprint()
            for job, payload in zip(jobs, payloads)
        ]
        by_shard: dict[int, list[int]] = {}
        for position, fingerprint in enumerate(fingerprints):
            by_shard.setdefault(self.shard_of(fingerprint), []).append(position)
        entries: list[dict | None] = [None] * len(payloads)
        for shard in sorted(by_shard):
            positions = by_shard[shard]
            shard_entries = self._request(
                "POST",
                "/v1/batches",
                {"jobs": [payloads[position] for position in positions]},
                base_url=self.base_urls[shard],
            )["jobs"]
            for position, entry in zip(positions, shard_entries):
                entry["shard"] = shard
                entries[position] = entry
        return entries

    def status(self, fingerprint: str, *, wait: float | None = None) -> dict:
        """One job's status entry; ``wait`` long-polls up to that many seconds.

        Raises :class:`~repro.errors.JobNotFoundError` for unknown
        fingerprints.  Routed to the owning replica when sharded.
        """
        base = self._url_for(fingerprint)
        path = f"/v1/jobs/{fingerprint}"
        if wait is None:
            return self._request("GET", path, base_url=base)
        window = min(max(float(wait), 0.0), self.max_wait)
        # The socket must stay open longer than the server-side wait.
        return self._request(
            "GET", f"{path}?wait={window:g}", timeout=window + self.timeout, base_url=base
        )

    def wait(self, fingerprint: str, *, timeout: float | None = None) -> dict:
        """Block until the job finishes, chaining long-poll windows.

        Every round trip parks in the server's condition-variable wait, so a
        job that completes within one window costs exactly one request.
        ``timeout=None`` (the default) waits as long as the job takes —
        matching the local engine, which has no client-side deadline either;
        with a timeout, :class:`TimeoutError` is raised when it passes.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            window = self.max_wait
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {fingerprint} did not finish within {timeout:g}s"
                    )
                window = min(window, remaining)
            entry = self.status(fingerprint, wait=window)
            if entry["status"] in _TERMINAL:
                return entry
