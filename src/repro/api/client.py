"""A thin HTTP client for the versioned ``/v1`` surface of ``gleipnir-serve``.

The client speaks exactly the wire format documented in
:mod:`repro.engine.service` (and ``docs/api.md``):

* ``submit()`` posts a batch of :class:`~repro.engine.spec.AnalysisJob`
  payloads to ``POST /v1/batches``;
* ``status()`` reads one job entry, optionally with a **long-poll**
  ``wait=`` window — the server blocks on its condition variable and pushes
  the result in the same response, so a completed job costs exactly one
  request;
* ``wait()`` chains long-poll windows until the job finishes or the caller's
  deadline passes;
* ``capabilities()`` performs ``GET /v1/capabilities`` discovery.

Errors come back as structured envelopes and are re-raised as the exact
:class:`~repro.errors.ReproError` subclass the server recorded
(:func:`repro.errors.error_from_envelope`), so remote and in-process callers
share one ``except`` vocabulary.  ``requests_sent`` counts HTTP round trips,
which the test suite uses to prove the long-poll path needs no client-side
polling.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from collections.abc import Sequence

from ..engine.service import TERMINAL_STATUSES
from ..engine.spec import AnalysisJob
from ..errors import EngineError, error_from_envelope

__all__ = ["Client"]


class Client:
    """HTTP access to a running ``gleipnir-serve`` (the ``/v1`` wire format).

    Args:
        base_url: service root, e.g. ``"http://127.0.0.1:8780"``.
        timeout: socket timeout for plain (non-waiting) requests.
        max_wait: largest single long-poll window requested from the server
            (the server additionally clamps to its own advertised limit).
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0, max_wait: float = 60.0):
        self.base_url = str(base_url).rstrip("/")
        self.timeout = float(timeout)
        self.max_wait = float(max_wait)
        #: HTTP round trips performed by this client (diagnostics/tests).
        self.requests_sent = 0

    # -- transport ---------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None, *, timeout: float | None = None
    ) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        self.requests_sent += 1
        try:
            with urllib.request.urlopen(request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read() or b"null")
        except urllib.error.HTTPError as error:
            try:
                envelope = json.loads(error.read() or b"null")
            except (json.JSONDecodeError, ValueError):
                envelope = None
            raise error_from_envelope(envelope, status=error.code) from None
        except urllib.error.URLError as exc:
            raise EngineError(
                f"cannot reach analysis service at {self.base_url}: {exc.reason}"
            ) from exc

    # -- API ---------------------------------------------------------------
    def capabilities(self) -> dict:
        """Service discovery (``GET /v1/capabilities``)."""
        return self._request("GET", "/v1/capabilities")

    def submit(self, jobs: Sequence[AnalysisJob | dict]) -> list[dict]:
        """Submit one batch; returns the aligned list of status entries.

        ``jobs`` may hold :class:`AnalysisJob` values or raw job payload
        dicts.  Validation is all-or-nothing on the server: a rejected batch
        executes nothing.
        """
        payloads = [
            job.to_json_dict() if isinstance(job, AnalysisJob) else dict(job) for job in jobs
        ]
        return self._request("POST", "/v1/batches", {"jobs": payloads})["jobs"]

    def status(self, fingerprint: str, *, wait: float | None = None) -> dict:
        """One job's status entry; ``wait`` long-polls up to that many seconds.

        Raises :class:`~repro.errors.JobNotFoundError` for unknown
        fingerprints.
        """
        path = f"/v1/jobs/{fingerprint}"
        if wait is None:
            return self._request("GET", path)
        window = min(max(float(wait), 0.0), self.max_wait)
        # The socket must stay open longer than the server-side wait.
        return self._request(
            "GET", f"{path}?wait={window:g}", timeout=window + self.timeout
        )

    def wait(self, fingerprint: str, *, timeout: float | None = None) -> dict:
        """Block until the job finishes, chaining long-poll windows.

        Every round trip parks in the server's condition-variable wait, so a
        job that completes within one window costs exactly one request.
        ``timeout=None`` (the default) waits as long as the job takes —
        matching the local engine, which has no client-side deadline either;
        with a timeout, :class:`TimeoutError` is raised when it passes.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            window = self.max_wait
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {fingerprint} did not finish within {timeout:g}s"
                    )
                window = min(window, remaining)
            entry = self.status(fingerprint, wait=window)
            if entry["status"] in TERMINAL_STATUSES:
                return entry
