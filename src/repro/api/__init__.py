"""``repro.api`` — the one front door of the Gleipnir reproduction.

Everything the repo can do — one-shot analyses, batched multi-program
sweeps, streamed results, per-gate bound queries, and remote submission to a
running ``gleipnir-serve`` — is reachable through a single versioned facade:

* :class:`AnalysisSession` — a context manager owning the engine / process
  pool / result store / bound cache wiring (or, with ``remote=``, an HTTP
  client), with ``analyze()``, ``analyze_batch()``, ``as_completed()``
  streaming, and ``gate_bound()``;
* :class:`AnalysisOutcome` — the typed, frozen result record every surface
  returns (bound, certification status, MPS walk count, timings,
  fingerprint) instead of flat dicts;
* :class:`Client` — a thin HTTP client speaking the service's versioned
  ``/v1`` wire format (batch submit, long-poll result push, capability
  discovery, structured errors).

See ``docs/api.md`` for the full surface, the ``/v1`` wire format, and the
deprecation table of the legacy entry points this facade replaces.

Quick start::

    import repro
    from repro.api import AnalysisSession

    circuit = repro.Circuit(2, name="ghz").h(0).cx(0, 1)
    noise = repro.NoiseModel.uniform_bit_flip(1e-3)
    with AnalysisSession(config=repro.AnalysisConfig(mps_width=4)) as session:
        outcome = session.analyze(circuit, noise)
    print(outcome.bound)
"""

from .client import Client
from .session import (
    AnalysisOutcome,
    AnalysisSession,
    add_session_arguments,
    session_from_args,
    trace_to_file,
)

__all__ = [
    "AnalysisOutcome",
    "AnalysisSession",
    "Client",
    "add_session_arguments",
    "session_from_args",
    "trace_to_file",
]
