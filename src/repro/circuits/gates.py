"""Gate definitions for the quantum circuit IR.

A :class:`Gate` couples a name, an optional parameter list, and a unitary
matrix.  The standard library (Figure 1 of the paper plus the usual NISQ gate
set) is exposed both as factory functions (``h()``, ``cx()``, ``rz(theta)``)
and through :func:`gate_by_name` for the text parser.

Gates are value objects: two gates compare equal when their names and
parameters match, which is what the SDP cache keys on.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import GateError
from ..linalg import operators as ops

__all__ = [
    "Gate",
    "gate_by_name",
    "available_gates",
    "identity",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "rx",
    "ry",
    "rz",
    "phase",
    "u3",
    "cx",
    "cnot",
    "cz",
    "swap",
    "rzz",
    "crz",
    "iswap",
    "custom_gate",
]


@dataclasses.dataclass(frozen=True)
class Gate:
    """A named unitary gate acting on a fixed number of qubits.

    Attributes:
        name: lower-case gate name (``"h"``, ``"cx"``, ``"rz"``, ...).
        num_qubits: arity of the gate.
        params: tuple of real parameters (rotation angles), possibly empty.
        matrix: the ``2**k x 2**k`` unitary.  Excluded from equality/hashing;
            equality is structural (name + params + arity).
    """

    name: str
    num_qubits: int
    params: tuple[float, ...] = ()
    matrix: np.ndarray = dataclasses.field(compare=False, hash=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.matrix is None:
            raise GateError(f"gate {self.name!r} constructed without a matrix")
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        expected = 2**self.num_qubits
        if matrix.shape != (expected, expected):
            raise GateError(
                f"gate {self.name!r} on {self.num_qubits} qubits needs a "
                f"{expected}x{expected} matrix, got {matrix.shape}"
            )
        if not ops.is_unitary(matrix, atol=1e-7):
            raise GateError(f"gate {self.name!r} matrix is not unitary")
        object.__setattr__(self, "matrix", matrix)

    @property
    def dim(self) -> int:
        return 2**self.num_qubits

    def dagger(self) -> "Gate":
        """The inverse gate (conjugate transpose), with a ``_dg`` name suffix."""
        name = self.name[:-3] if self.name.endswith("_dg") else self.name + "_dg"
        return Gate(name, self.num_qubits, tuple(-p for p in self.params), self.matrix.conj().T)

    def label(self) -> str:
        """Human-readable label, e.g. ``rz(0.500)``."""
        if not self.params:
            return self.name
        args = ", ".join(f"{p:.6g}" for p in self.params)
        return f"{self.name}({args})"

    def key(self) -> tuple:
        """Hashable identity used for SDP caching."""
        return (self.name, self.num_qubits, tuple(round(float(p), 12) for p in self.params))


# ---------------------------------------------------------------------------
# Standard gate factories
# ---------------------------------------------------------------------------

def identity(num_qubits: int = 1) -> Gate:
    """Identity gate on ``num_qubits`` qubits."""
    return Gate("id", num_qubits, (), np.eye(2**num_qubits, dtype=np.complex128))


def x() -> Gate:
    """Pauli-X (bit flip)."""
    return Gate("x", 1, (), ops.PAULI_X)


def y() -> Gate:
    """Pauli-Y."""
    return Gate("y", 1, (), ops.PAULI_Y)


def z() -> Gate:
    """Pauli-Z (phase flip)."""
    return Gate("z", 1, (), ops.PAULI_Z)


def h() -> Gate:
    """Hadamard gate."""
    return Gate("h", 1, (), ops.HADAMARD)


def s() -> Gate:
    """Phase gate S = sqrt(Z)."""
    return Gate("s", 1, (), ops.S_GATE)


def sdg() -> Gate:
    """Inverse phase gate."""
    return Gate("sdg", 1, (), ops.SDG_GATE)


def t() -> Gate:
    """T gate (pi/8 gate)."""
    return Gate("t", 1, (), ops.T_GATE)


def tdg() -> Gate:
    """Inverse T gate."""
    return Gate("tdg", 1, (), ops.TDG_GATE)


def rx(theta: float) -> Gate:
    """X-axis rotation by ``theta``."""
    return Gate("rx", 1, (float(theta),), ops.rx_matrix(theta))


def ry(theta: float) -> Gate:
    """Y-axis rotation by ``theta``."""
    return Gate("ry", 1, (float(theta),), ops.ry_matrix(theta))


def rz(theta: float) -> Gate:
    """Z-axis rotation by ``theta``."""
    return Gate("rz", 1, (float(theta),), ops.rz_matrix(theta))


def phase(phi: float) -> Gate:
    """Phase gate ``diag(1, e^{i phi})``."""
    return Gate("p", 1, (float(phi),), ops.phase_matrix(phi))


def u3(theta: float, phi: float, lam: float) -> Gate:
    """General single-qubit unitary."""
    return Gate("u3", 1, (float(theta), float(phi), float(lam)), ops.u3_matrix(theta, phi, lam))


def cx() -> Gate:
    """Controlled-NOT (control is the first qubit)."""
    return Gate("cx", 2, (), ops.CNOT)


def cnot() -> Gate:
    """Alias of :func:`cx`."""
    return cx()


def cz() -> Gate:
    """Controlled-Z."""
    return Gate("cz", 2, (), ops.CZ)


def swap() -> Gate:
    """SWAP gate."""
    return Gate("swap", 2, (), ops.SWAP)


def rzz(theta: float) -> Gate:
    """Two-qubit Ising interaction ``exp(-i theta Z⊗Z / 2)``."""
    return Gate("rzz", 2, (float(theta),), ops.rzz_matrix(theta))


def crz(theta: float) -> Gate:
    """Controlled-RZ rotation."""
    return Gate("crz", 2, (float(theta),), ops.controlled(ops.rz_matrix(theta)))


def iswap() -> Gate:
    """iSWAP gate."""
    matrix = np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]],
        dtype=np.complex128,
    )
    return Gate("iswap", 2, (), matrix)


def custom_gate(name: str, matrix: np.ndarray, params: Sequence[float] = ()) -> Gate:
    """A user-defined gate from an explicit unitary matrix."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    num_qubits = int(round(np.log2(matrix.shape[0])))
    if 2**num_qubits != matrix.shape[0]:
        raise GateError(f"matrix dimension {matrix.shape[0]} is not a power of two")
    return Gate(name.lower(), num_qubits, tuple(float(p) for p in params), matrix)


_PARAMETRIC: dict[str, Callable[..., Gate]] = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "p": phase,
    "phase": phase,
    "u3": u3,
    "rzz": rzz,
    "crz": crz,
}

_FIXED: dict[str, Callable[[], Gate]] = {
    "id": identity,
    "i": identity,
    "x": x,
    "y": y,
    "z": z,
    "h": h,
    "s": s,
    "sdg": sdg,
    "t": t,
    "tdg": tdg,
    "cx": cx,
    "cnot": cnot,
    "cz": cz,
    "swap": swap,
    "iswap": iswap,
}


def available_gates() -> list[str]:
    """Names of all gates the library can construct by name."""
    return sorted(set(_FIXED) | set(_PARAMETRIC))


def gate_by_name(name: str, *params: float) -> Gate:
    """Construct a standard gate from its name and parameters.

    Used by the circuit text parser and by noise models that attach channels
    to gate names.
    """
    key = name.lower()
    if key in _FIXED:
        if params:
            raise GateError(f"gate {name!r} takes no parameters")
        return _FIXED[key]()
    if key in _PARAMETRIC:
        return _PARAMETRIC[key](*params)
    raise GateError(f"unknown gate name {name!r}; known gates: {available_gates()}")
