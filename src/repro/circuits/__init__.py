"""Quantum circuit IR: gates, program AST, builder, parser, DAG, transforms."""

from .gates import (
    Gate,
    available_gates,
    cnot,
    crz,
    custom_gate,
    cx,
    cz,
    gate_by_name,
    h,
    identity,
    iswap,
    phase,
    rx,
    ry,
    rz,
    rzz,
    s,
    sdg,
    swap,
    t,
    tdg,
    u3,
    x,
    y,
    z,
)
from .program import GateOp, IfMeasure, Program, Seq, Skip, gate_op, seq
from .circuit import Circuit
from .parser import dumps, loads, parse_circuit, serialize_circuit
from .serialize import (
    gate_from_json_dict,
    gate_to_json_dict,
    program_from_json_dict,
    program_to_json_dict,
)
from .dag import CircuitDAG, circuit_depth, circuit_moments
from .drawer import draw_circuit
from .transforms import (
    count_gates_by_name,
    decompose_rzz,
    decompose_swaps,
    fuse_single_qubit_gates,
    merge_adjacent_inverses,
    route_to_coupling,
)

__all__ = [name for name in dir() if not name.startswith("_")]
