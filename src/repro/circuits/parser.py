"""A small textual circuit format (parser and serialiser).

The format is intentionally minimal — enough to store benchmark circuits on
disk and to write readable tests — while still covering the whole program
syntax of the paper, including measurement branches::

    # comments start with '#'
    qubits 3
    h 0
    cx 0 1
    rz(0.5) 1
    if 2 {
        x 0
    } else {
        z 0
    }

Gate names and parameters follow :func:`repro.circuits.gates.gate_by_name`.
"""

from __future__ import annotations

import re

from ..errors import CircuitError
from .circuit import Circuit
from .gates import gate_by_name
from .program import GateOp, IfMeasure, Program

__all__ = ["parse_circuit", "serialize_circuit", "loads", "dumps"]

_GATE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<qubits>[0-9 ,]*)$"
)
_IF_RE = re.compile(r"^if\s+(?P<qubit>\d+)\s*\{$")


class _Parser:
    def __init__(self, text: str):
        self.lines = self._clean(text)
        self.position = 0

    @staticmethod
    def _clean(text: str) -> list[str]:
        lines = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                lines.append(line)
        return lines

    def peek(self) -> str | None:
        if self.position < len(self.lines):
            return self.lines[self.position]
        return None

    def advance(self) -> str:
        line = self.peek()
        if line is None:
            raise CircuitError("unexpected end of circuit text")
        self.position += 1
        return line

    def parse(self) -> Circuit:
        header = self.advance()
        match = re.match(r"^qubits\s+(\d+)$", header)
        if not match:
            raise CircuitError(f"expected 'qubits N' header, got {header!r}")
        circuit = Circuit(int(match.group(1)), name="parsed")
        while self.peek() is not None:
            circuit.append_statement(self._parse_statement())
        return circuit

    def _parse_statement(self) -> Program:
        line = self.advance()
        if_match = _IF_RE.match(line)
        if if_match:
            return self._parse_if(int(if_match.group("qubit")))
        return self._parse_gate(line)

    def _parse_gate(self, line: str) -> GateOp:
        match = _GATE_RE.match(line)
        if not match:
            raise CircuitError(f"cannot parse gate line {line!r}")
        name = match.group("name")
        params_text = match.group("params")
        qubits_text = match.group("qubits").strip()
        params = []
        if params_text:
            params = [float(p) for p in re.split(r"[\s,]+", params_text.strip()) if p]
        if not qubits_text:
            raise CircuitError(f"gate line {line!r} lists no qubits")
        qubits = [int(q) for q in re.split(r"[\s,]+", qubits_text) if q]
        gate = gate_by_name(name, *params)
        return GateOp(gate, tuple(qubits))

    def _parse_if(self, qubit: int) -> IfMeasure:
        then_statements: list[Program] = []
        else_statements: list[Program] = []
        current = then_statements
        while True:
            line = self.peek()
            if line is None:
                raise CircuitError("unterminated 'if' block")
            if line == "} else {":
                self.advance()
                current = else_statements
                continue
            if line == "}":
                self.advance()
                break
            current.append(self._parse_statement())
        from .program import seq

        return IfMeasure(qubit, seq(*then_statements), seq(*else_statements))


def parse_circuit(text: str) -> Circuit:
    """Parse a circuit from its textual representation."""
    return _Parser(text).parse()


def loads(text: str) -> Circuit:
    """Alias of :func:`parse_circuit`."""
    return parse_circuit(text)


def _serialize_statement(statement: Program, indent: int) -> list[str]:
    pad = " " * indent
    if isinstance(statement, GateOp):
        params = ""
        if statement.gate.params:
            params = "(" + ", ".join(f"{p:.12g}" for p in statement.gate.params) + ")"
        qubits = " ".join(str(q) for q in statement.qubits)
        return [f"{pad}{statement.gate.name}{params} {qubits}"]
    if isinstance(statement, IfMeasure):
        lines = [f"{pad}if {statement.qubit} {{"]
        for sub in statement.then_branch.statements():
            lines.extend(_serialize_statement(sub, indent + 4))
        lines.append(f"{pad}}} else {{")
        for sub in statement.else_branch.statements():
            lines.extend(_serialize_statement(sub, indent + 4))
        lines.append(f"{pad}}}")
        return lines
    raise CircuitError(f"cannot serialise statement of type {type(statement).__name__}")


def serialize_circuit(circuit: Circuit) -> str:
    """Serialise a circuit into the textual format accepted by :func:`parse_circuit`."""
    lines = [f"qubits {circuit.num_qubits}"]
    for statement in circuit.statements:
        for sub in statement.statements() if not isinstance(statement, IfMeasure) else [statement]:
            lines.extend(_serialize_statement(sub, 0))
    return "\n".join(lines) + "\n"


def dumps(circuit: Circuit) -> str:
    """Alias of :func:`serialize_circuit`."""
    return serialize_circuit(circuit)
