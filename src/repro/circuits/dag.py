"""DAG and moment views of branch-free circuits.

Compiler passes (routing, scheduling) and reports use a dependency view of a
circuit: two gates commute structurally when they act on disjoint qubits.
This module builds that DAG with :mod:`networkx` and derives moments (layers
of simultaneously executable gates) and the critical-path depth.
"""

from __future__ import annotations

import networkx as nx

from ..errors import CircuitError
from .circuit import Circuit
from .program import GateOp

__all__ = ["CircuitDAG", "circuit_moments", "circuit_depth"]


class CircuitDAG:
    """Dependency DAG of a branch-free circuit.

    Nodes are integers (the position of the gate in program order) with a
    ``"op"`` attribute holding the :class:`~repro.circuits.program.GateOp`.
    There is an edge ``i -> j`` when gate ``j`` is the next gate after ``i``
    on at least one shared qubit.
    """

    def __init__(self, circuit: Circuit):
        if circuit.has_branches():
            raise CircuitError("CircuitDAG only supports branch-free circuits")
        self._circuit = circuit
        self._graph = nx.DiGraph()
        last_on_qubit: dict[int, int] = {}
        for index, op in enumerate(circuit.operations()):
            self._graph.add_node(index, op=op)
            for qubit in op.qubits:
                previous = last_on_qubit.get(qubit)
                if previous is not None:
                    self._graph.add_edge(previous, index)
                last_on_qubit[qubit] = index

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def operations(self) -> list[GateOp]:
        """Gates in a valid topological order."""
        return [self._graph.nodes[i]["op"] for i in nx.topological_sort(self._graph)]

    def moments(self) -> list[list[GateOp]]:
        """Group gates into moments using an as-soon-as-possible schedule."""
        level: dict[int, int] = {}
        for node in nx.topological_sort(self._graph):
            predecessors = list(self._graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in predecessors), default=-1)
        num_levels = 1 + max(level.values(), default=-1)
        moments: list[list[GateOp]] = [[] for _ in range(num_levels)]
        for node, lvl in level.items():
            moments[lvl].append(self._graph.nodes[node]["op"])
        return moments

    def depth(self) -> int:
        """Critical path length (number of moments)."""
        return len(self.moments())

    def two_qubit_depth(self) -> int:
        """Depth counting only 2-qubit gates (a common NISQ cost proxy)."""
        level: dict[int, int] = {}
        for node in nx.topological_sort(self._graph):
            op = self._graph.nodes[node]["op"]
            predecessors = list(self._graph.predecessors(node))
            base = max((level[p] for p in predecessors), default=0)
            level[node] = base + (1 if op.gate.num_qubits >= 2 else 0)
        return max(level.values(), default=0)


def circuit_moments(circuit: Circuit) -> list[list[GateOp]]:
    """Moments (layers) of a branch-free circuit."""
    return CircuitDAG(circuit).moments()


def circuit_depth(circuit: Circuit) -> int:
    """Critical-path depth of a branch-free circuit."""
    return CircuitDAG(circuit).depth()
