"""ASCII rendering of quantum circuits (the style of Figures 2 and 16).

``draw_circuit`` lays a branch-free circuit out in moments (columns of gates
that can execute simultaneously) and renders one text row per qubit wire::

    q0: ─[h]──●────────
              │
    q1: ─────[X]──[rz]─

Control qubits of CX/CZ gates are drawn as ``●`` and connected to their
targets with a vertical bar; other multi-qubit gates print their name on each
wire they touch.  The output is meant for logs, examples, and debugging — it
is not a full typesetting engine.
"""

from __future__ import annotations

from ..errors import CircuitError
from .circuit import Circuit
from .dag import circuit_moments
from .program import GateOp

__all__ = ["draw_circuit"]

_CONTROL_TARGET_GATES = {"cx": "X", "cz": "Z", "crz": "rz"}


def _gate_cells(op: GateOp) -> dict[int, str]:
    """Label to print on each wire the operation touches."""
    if op.gate.num_qubits == 1:
        return {op.qubits[0]: f"[{op.gate.label()}]"}
    if op.gate.name in _CONTROL_TARGET_GATES:
        control, target = op.qubits
        return {control: "●", target: f"[{_CONTROL_TARGET_GATES[op.gate.name]}]"}
    if op.gate.name == "swap":
        return {op.qubits[0]: "x", op.qubits[1]: "x"}
    return {qubit: f"[{op.gate.label()}]" for qubit in op.qubits}


def draw_circuit(circuit: Circuit, *, wire: str = "─") -> str:
    """Render a branch-free circuit as ASCII art, one row per qubit."""
    if circuit.has_branches():
        raise CircuitError("draw_circuit only supports branch-free circuits")
    moments = circuit_moments(circuit)
    num_qubits = circuit.num_qubits

    columns: list[dict[int, str]] = []
    connectors: list[set[int]] = []
    for moment in moments:
        cells: dict[int, str] = {}
        links: set[int] = set()
        for op in moment:
            cells.update(_gate_cells(op))
            if op.gate.num_qubits == 2:
                low, high = sorted(op.qubits)
                links.update(range(low, high))
        columns.append(cells)
        connectors.append(links)

    widths = [
        max((len(cell) for cell in cells.values()), default=1) for cells in columns
    ]
    label_width = len(f"q{num_qubits - 1}: ")

    rows: list[str] = []
    for qubit in range(num_qubits):
        parts = [f"q{qubit}: ".ljust(label_width)]
        for cells, width in zip(columns, widths):
            cell = cells.get(qubit, "")
            parts.append(wire + cell.center(width, wire) + wire)
        rows.append("".join(parts))
        if qubit < num_qubits - 1:
            spacer = [" " * label_width]
            for links, width in zip(connectors, widths):
                mark = "│" if qubit in links else " "
                spacer.append(" " + mark.center(width) + " ")
            rows.append("".join(spacer).rstrip())
    return "\n".join(row.rstrip() for row in rows)
