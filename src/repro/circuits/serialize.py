"""Canonical JSON (de)serialization of programs and gates.

The analysis engine (:mod:`repro.engine`) needs programs to cross process
boundaries and to be *fingerprinted*: two structurally identical programs must
serialize to the same canonical form regardless of how they were built.  The
format is therefore deliberately plain — nested dicts of primitives with a
``kind`` discriminator per AST node — so it can be emitted with
``json.dumps(..., sort_keys=True)`` and hashed.

Gates round-trip through the standard library (:func:`gate_by_name`) whenever
the name and parameters fully determine the unitary; gates outside the
library (custom unitaries, ``dagger()`` derivatives) embed their matrix as
nested ``[re, im]`` pairs.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError
from ..linalg.codec import complex_matrix_from_json, complex_matrix_to_json
from . import gates as gate_lib
from .circuit import Circuit
from .gates import Gate
from .program import GateOp, IfMeasure, Program, Seq, Skip, seq

__all__ = [
    "gate_to_json_dict",
    "gate_from_json_dict",
    "program_to_json_dict",
    "program_from_json_dict",
    "matrix_to_json",
    "matrix_from_json",
]


def matrix_to_json(matrix: np.ndarray) -> list:
    """A complex matrix as nested ``[re, im]`` pairs (row-major)."""
    return complex_matrix_to_json(matrix)


def matrix_from_json(payload: list) -> np.ndarray:
    """Inverse of :func:`matrix_to_json`."""
    try:
        return complex_matrix_from_json(payload)
    except ValueError as exc:
        raise CircuitError(str(exc)) from exc


def _library_rebuilds(gate: Gate) -> bool:
    """Whether ``gate_by_name(name, *params)`` reproduces this gate's matrix."""
    try:
        rebuilt = gate_lib.gate_by_name(gate.name, *gate.params)
    except Exception:
        return False
    return rebuilt.num_qubits == gate.num_qubits and bool(
        np.allclose(rebuilt.matrix, gate.matrix, atol=1e-12)
    )


def gate_to_json_dict(gate: Gate) -> dict:
    """Canonical dict form of a gate.

    The matrix is embedded only when the standard library cannot rebuild it
    from ``(name, params)`` — this keeps payloads small and fingerprints
    independent of float-printing details for the common gate set.
    """
    payload: dict = {"name": gate.name, "params": [float(p) for p in gate.params]}
    if not _library_rebuilds(gate):
        payload["num_qubits"] = gate.num_qubits
        payload["matrix"] = matrix_to_json(gate.matrix)
    return payload


def gate_from_json_dict(payload: dict) -> Gate:
    """Inverse of :func:`gate_to_json_dict`."""
    try:
        name = payload["name"]
        params = tuple(float(p) for p in payload.get("params", ()))
    except (TypeError, KeyError, ValueError) as exc:
        raise CircuitError(f"malformed gate payload: {exc}") from exc
    if "matrix" in payload:
        return gate_lib.custom_gate(name, matrix_from_json(payload["matrix"]), params)
    return gate_lib.gate_by_name(name, *params)


def program_to_json_dict(program: Program | Circuit) -> dict:
    """Canonical dict form of a program AST (or a circuit's AST)."""
    if isinstance(program, Circuit):
        program = program.to_program()
    if isinstance(program, Skip):
        return {"kind": "skip"}
    if isinstance(program, GateOp):
        return {
            "kind": "gate",
            "gate": gate_to_json_dict(program.gate),
            "qubits": list(program.qubits),
        }
    if isinstance(program, Seq):
        return {"kind": "seq", "parts": [program_to_json_dict(p) for p in program.parts]}
    if isinstance(program, IfMeasure):
        return {
            "kind": "if",
            "qubit": program.qubit,
            "then": program_to_json_dict(program.then_branch),
            "else": program_to_json_dict(program.else_branch),
        }
    raise CircuitError(f"cannot serialize program node {type(program).__name__}")


def program_from_json_dict(payload: dict) -> Program:
    """Inverse of :func:`program_to_json_dict`."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise CircuitError(f"malformed program payload: {payload!r}")
    kind = payload["kind"]
    try:
        if kind == "skip":
            return Skip()
        if kind == "gate":
            return GateOp(
                gate_from_json_dict(payload["gate"]),
                tuple(int(q) for q in payload["qubits"]),
            )
        if kind == "seq":
            return seq(*(program_from_json_dict(p) for p in payload["parts"]))
        if kind == "if":
            return IfMeasure(
                int(payload["qubit"]),
                program_from_json_dict(payload["then"]),
                program_from_json_dict(payload["else"]),
            )
    except (TypeError, KeyError, ValueError) as exc:
        raise CircuitError(f"malformed {kind!r} node payload: {exc}") from exc
    raise CircuitError(f"unknown program node kind {kind!r}")
