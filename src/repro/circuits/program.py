"""Quantum program abstract syntax (Section 2.2 of the paper).

The syntax is::

    P ::= skip | P1; P2 | U(q1, ..., qk) | if q = |0> then P0 else P1

represented by the classes :class:`Skip`, :class:`Seq`, :class:`GateOp` and
:class:`IfMeasure`.  Programs are immutable trees; the builder in
:mod:`repro.circuits.circuit` offers a friendlier fluent API for the common
branch-free case.

The denotational semantics of Figure 3 is implemented in
:mod:`repro.semantics.density`; this module only defines the structure plus
structural queries (gate counts, qubit usage, branch counts) needed by the
approximator and the error logic.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Sequence

from ..errors import CircuitError
from .gates import Gate

__all__ = [
    "Program",
    "Skip",
    "GateOp",
    "Seq",
    "IfMeasure",
    "seq",
    "gate_op",
]


class Program:
    """Base class of the program AST."""

    # -- structural queries ------------------------------------------------
    def qubits_used(self) -> frozenset[int]:
        """Set of qubit indices referenced anywhere in the program."""
        raise NotImplementedError

    @property
    def num_qubits(self) -> int:
        """Smallest register size containing every referenced qubit."""
        used = self.qubits_used()
        return (max(used) + 1) if used else 0

    def gate_count(self) -> int:
        """Number of gate applications (maximum over branches for ``if``)."""
        raise NotImplementedError

    def total_gate_count(self) -> int:
        """Number of gate applications summed over *all* branches."""
        raise NotImplementedError

    def branch_count(self) -> int:
        """Number of measurement branches (1 for branch-free programs)."""
        raise NotImplementedError

    def has_branches(self) -> bool:
        return self.branch_count() > 1

    def operations(self) -> Iterator["GateOp"]:
        """Iterate gate applications in program order.

        Only valid for branch-free programs; raises
        :class:`~repro.errors.CircuitError` otherwise.
        """
        if self.has_branches():
            raise CircuitError("operations() is only defined for branch-free programs")
        yield from self._operations()

    def _operations(self) -> Iterator["GateOp"]:
        raise NotImplementedError

    def statements(self) -> list["Program"]:
        """Flatten nested sequences into a statement list (branches kept intact)."""
        raise NotImplementedError

    # -- composition ---------------------------------------------------------
    def then(self, other: "Program") -> "Program":
        """Sequential composition ``self; other``."""
        return seq(self, other)

    def __rshift__(self, other: "Program") -> "Program":
        return self.then(other)

    # -- pretty printing -----------------------------------------------------
    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.pretty()


@dataclasses.dataclass(frozen=True)
class Skip(Program):
    """The empty program."""

    def qubits_used(self) -> frozenset[int]:
        return frozenset()

    def gate_count(self) -> int:
        return 0

    def total_gate_count(self) -> int:
        return 0

    def branch_count(self) -> int:
        return 1

    def _operations(self) -> Iterator["GateOp"]:
        return iter(())

    def statements(self) -> list[Program]:
        return []

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + "skip"


@dataclasses.dataclass(frozen=True)
class GateOp(Program):
    """Application of a gate to an ordered tuple of qubits."""

    gate: Gate
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qubits)
        if len(qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} needs {self.gate.num_qubits} qubits, "
                f"got {qubits}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"gate applied to duplicate qubits {qubits}")
        if any(q < 0 for q in qubits):
            raise CircuitError(f"negative qubit index in {qubits}")

    def qubits_used(self) -> frozenset[int]:
        return frozenset(self.qubits)

    def gate_count(self) -> int:
        return 1

    def total_gate_count(self) -> int:
        return 1

    def branch_count(self) -> int:
        return 1

    def _operations(self) -> Iterator["GateOp"]:
        yield self

    def statements(self) -> list[Program]:
        return [self]

    def pretty(self, indent: int = 0) -> str:
        args = ", ".join(f"q{q}" for q in self.qubits)
        return " " * indent + f"{self.gate.label()}({args})"


@dataclasses.dataclass(frozen=True)
class Seq(Program):
    """Sequential composition of two or more programs."""

    parts: tuple[Program, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise CircuitError("Seq needs at least one part; use Skip for empty programs")

    def qubits_used(self) -> frozenset[int]:
        used: frozenset[int] = frozenset()
        for part in self.parts:
            used |= part.qubits_used()
        return used

    def gate_count(self) -> int:
        return sum(part.gate_count() for part in self.parts)

    def total_gate_count(self) -> int:
        return sum(part.total_gate_count() for part in self.parts)

    def branch_count(self) -> int:
        count = 1
        for part in self.parts:
            count *= part.branch_count()
        return count

    def _operations(self) -> Iterator[GateOp]:
        for part in self.parts:
            yield from part._operations()

    def statements(self) -> list[Program]:
        flat: list[Program] = []
        for part in self.parts:
            flat.extend(part.statements())
        return flat

    def pretty(self, indent: int = 0) -> str:
        return "\n".join(part.pretty(indent) for part in self.parts)


@dataclasses.dataclass(frozen=True)
class IfMeasure(Program):
    """``if q = |0> then P0 else P1``: measure ``qubit`` and branch.

    The measurement collapses the state; ``then_branch`` runs on outcome 0 and
    ``else_branch`` on outcome 1 (Section 2.2).
    """

    qubit: int
    then_branch: Program
    else_branch: Program

    def __post_init__(self) -> None:
        if self.qubit < 0:
            raise CircuitError(f"negative qubit index {self.qubit}")

    def qubits_used(self) -> frozenset[int]:
        return (
            frozenset({self.qubit})
            | self.then_branch.qubits_used()
            | self.else_branch.qubits_used()
        )

    def gate_count(self) -> int:
        return max(self.then_branch.gate_count(), self.else_branch.gate_count())

    def total_gate_count(self) -> int:
        return self.then_branch.total_gate_count() + self.else_branch.total_gate_count()

    def branch_count(self) -> int:
        return self.then_branch.branch_count() + self.else_branch.branch_count()

    def _operations(self) -> Iterator[GateOp]:
        raise CircuitError("operations() is only defined for branch-free programs")

    def statements(self) -> list[Program]:
        return [self]

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = [pad + f"if q{self.qubit} = |0> then {{"]
        then_body = self.then_branch.pretty(indent + 2)
        else_body = self.else_branch.pretty(indent + 2)
        lines.append(then_body if then_body.strip() else " " * (indent + 2) + "skip")
        lines.append(pad + "} else {")
        lines.append(else_body if else_body.strip() else " " * (indent + 2) + "skip")
        lines.append(pad + "}")
        return "\n".join(lines)


def seq(*programs: Program) -> Program:
    """Sequential composition, flattening nested sequences and dropping skips."""
    flat: list[Program] = []
    for program in programs:
        if isinstance(program, Skip):
            continue
        if isinstance(program, Seq):
            flat.extend(program.parts)
        else:
            flat.append(program)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def gate_op(gate: Gate, qubits: Sequence[int] | int) -> GateOp:
    """Convenience constructor for a gate application."""
    if isinstance(qubits, Iterable) and not isinstance(qubits, (str, bytes)):
        qubit_tuple = tuple(int(q) for q in qubits)
    else:
        qubit_tuple = (int(qubits),)
    return GateOp(gate, qubit_tuple)
