"""Circuit transformation passes.

These are the compiler-style rewrites used by the benchmark generators and the
device experiments:

* :func:`decompose_rzz` — expand ``rzz(theta)`` into the CNOT–RZ–CNOT pattern
  available on NISQ hardware (this is the form the paper's QAOA/Ising
  benchmarks are counted in);
* :func:`decompose_swaps` — expand SWAP gates into three CNOTs;
* :func:`route_to_coupling` — insert SWAP gates so every 2-qubit gate acts on
  an edge of a coupling graph (used by the qubit-mapping study of Table 3);
* :func:`fuse_single_qubit_gates` — merge runs of adjacent 1-qubit gates into
  a single ``u3``-style unitary;
* :func:`merge_adjacent_inverses` — drop gate pairs that cancel exactly.

All passes take and return :class:`~repro.circuits.circuit.Circuit` objects
and never mutate their input.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from ..errors import CircuitError
from . import gates as gate_lib
from .circuit import Circuit
from .program import GateOp

__all__ = [
    "decompose_rzz",
    "decompose_swaps",
    "fuse_single_qubit_gates",
    "merge_adjacent_inverses",
    "route_to_coupling",
    "count_gates_by_name",
]


def _copy_structure(circuit: Circuit, name_suffix: str) -> Circuit:
    return Circuit(circuit.num_qubits, name=f"{circuit.name}{name_suffix}")


def decompose_rzz(circuit: Circuit) -> Circuit:
    """Rewrite every ``rzz(theta)`` as ``cx; rz(theta); cx``."""
    out = _copy_structure(circuit, "_rzz_decomposed")
    for op in circuit.operations():
        if op.gate.name == "rzz":
            control, target = op.qubits
            theta = op.gate.params[0]
            out.cx(control, target)
            out.rz(theta, target)
            out.cx(control, target)
        else:
            out.append(op.gate, *op.qubits)
    return out


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Rewrite every SWAP as three alternating CNOTs."""
    out = _copy_structure(circuit, "_swap_decomposed")
    for op in circuit.operations():
        if op.gate.name == "swap":
            a, b = op.qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        else:
            out.append(op.gate, *op.qubits)
    return out


def fuse_single_qubit_gates(circuit: Circuit) -> Circuit:
    """Merge maximal runs of single-qubit gates on the same qubit.

    The merged gate is emitted as a custom unitary named ``fused``.  Two-qubit
    gates act as barriers on the qubits they touch.
    """
    out = _copy_structure(circuit, "_fused")
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix, np.eye(2), atol=1e-12):
            return
        out.append(gate_lib.custom_gate("fused", matrix), qubit)

    for op in circuit.operations():
        if op.gate.num_qubits == 1:
            (qubit,) = op.qubits
            pending[qubit] = op.gate.matrix @ pending.get(qubit, np.eye(2, dtype=np.complex128))
        else:
            for qubit in op.qubits:
                flush(qubit)
            out.append(op.gate, *op.qubits)
    for qubit in sorted(pending):
        flush(qubit)
    return out


def merge_adjacent_inverses(circuit: Circuit) -> Circuit:
    """Cancel immediately adjacent gate pairs whose product is the identity."""
    out_ops: list[GateOp] = []
    for op in circuit.operations():
        if out_ops:
            previous = out_ops[-1]
            if previous.qubits == op.qubits and previous.gate.num_qubits == op.gate.num_qubits:
                product = op.gate.matrix @ previous.gate.matrix
                phase = product[0, 0]
                if abs(abs(phase) - 1.0) < 1e-10 and np.allclose(
                    product, phase * np.eye(product.shape[0]), atol=1e-10
                ):
                    out_ops.pop()
                    continue
        out_ops.append(op)
    out = _copy_structure(circuit, "_cancelled")
    for op in out_ops:
        out.append(op.gate, *op.qubits)
    return out


def count_gates_by_name(circuit: Circuit) -> dict[str, int]:
    """Histogram of gate names, useful in reports and tests."""
    counts: dict[str, int] = {}
    for op in circuit.operations():
        counts[op.gate.name] = counts.get(op.gate.name, 0) + 1
    return counts


def route_to_coupling(
    circuit: Circuit,
    edges: Iterable[tuple[int, int]],
    *,
    num_physical_qubits: int | None = None,
    initial_layout: Sequence[int] | None = None,
) -> Circuit:
    """Insert SWAPs so that every 2-qubit gate acts on a coupling-graph edge.

    A simple greedy router: logical qubits start at ``initial_layout``
    (identity by default); before each 2-qubit gate acting on physically
    distant qubits, SWAP gates move one operand along a shortest path until
    the operands are adjacent.  The emitted circuit acts on *physical* qubits.

    This mirrors what a NISQ compiler does after choosing a qubit mapping
    (Section 7.2); noise-adaptive mapping selection itself lives in
    :mod:`repro.devices.mapping`.
    """
    graph = nx.Graph()
    graph.add_edges_from(edges)
    if num_physical_qubits is None:
        num_physical_qubits = (
            (max(graph.nodes) + 1) if graph.number_of_nodes() else circuit.num_qubits
        )
    graph.add_nodes_from(range(num_physical_qubits))

    if initial_layout is None:
        layout = list(range(circuit.num_qubits))
    else:
        layout = list(initial_layout)
    if len(layout) < circuit.num_qubits:
        raise CircuitError("initial_layout must place every logical qubit")
    if len(set(layout)) != len(layout):
        raise CircuitError("initial_layout must be injective")
    for physical in layout:
        if physical not in graph.nodes:
            raise CircuitError(f"layout uses physical qubit {physical} not in the device")

    # logical -> physical position
    position = {logical: physical for logical, physical in enumerate(layout)}
    # physical -> logical occupant (or None)
    occupant: dict[int, int | None] = {p: None for p in graph.nodes}
    for logical, physical in position.items():
        occupant[physical] = logical

    routed = Circuit(num_physical_qubits, name=f"{circuit.name}_routed")

    def apply_swap(a: int, b: int) -> None:
        routed.swap(a, b)
        la, lb = occupant[a], occupant[b]
        occupant[a], occupant[b] = lb, la
        if la is not None:
            position[la] = b
        if lb is not None:
            position[lb] = a

    for op in circuit.operations():
        if op.gate.num_qubits == 1:
            routed.append(op.gate, position[op.qubits[0]])
            continue
        if op.gate.num_qubits != 2:
            raise CircuitError("route_to_coupling handles 1- and 2-qubit gates only")
        a, b = (position[q] for q in op.qubits)
        if not graph.has_edge(a, b):
            try:
                path = nx.shortest_path(graph, a, b)
            except nx.NetworkXNoPath as exc:
                raise CircuitError(
                    f"physical qubits {a} and {b} are disconnected in the coupling graph"
                ) from exc
            # Walk qubit `a` along the path until adjacent to `b`.
            for step in range(1, len(path) - 1):
                apply_swap(path[step - 1], path[step])
            a, b = (position[q] for q in op.qubits)
            if not graph.has_edge(a, b):
                raise CircuitError("routing failed to make operands adjacent")
        routed.append(op.gate, a, b)
    return routed
