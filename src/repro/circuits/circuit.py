"""A fluent builder for (mostly branch-free) quantum circuits.

:class:`Circuit` is the user-facing way to construct the benchmark programs:
it records gate applications against a fixed register size and converts to
the :class:`~repro.circuits.program.Program` AST consumed by the simulators,
the MPS approximator, and the error logic.

The builder also supports ``if`` statements through :meth:`if_measure`, so
branchy programs such as quantum teleportation can be expressed without
touching the AST classes directly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import CircuitError
from . import gates as gate_lib
from .gates import Gate
from .program import GateOp, IfMeasure, Program, Skip, seq

__all__ = ["Circuit"]


class Circuit:
    """An ordered list of gate applications (and optional ``if`` statements).

    Args:
        num_qubits: size of the qubit register.  All gate applications are
            validated against this size.
        name: optional human-readable name used in reports.
    """

    def __init__(self, num_qubits: int, *, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._name = name
        self._statements: list[Program] = []

    # -- basic properties ---------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def name(self) -> str:
        return self._name

    @property
    def statements(self) -> tuple[Program, ...]:
        return tuple(self._statements)

    def __len__(self) -> int:
        return sum(stmt.total_gate_count() for stmt in self._statements)

    def gate_count(self) -> int:
        """Number of gate applications (branches counted by their maximum)."""
        return sum(stmt.gate_count() for stmt in self._statements)

    def two_qubit_gate_count(self) -> int:
        """Number of 2-qubit gate applications in branch-free circuits."""
        return sum(1 for op in self.operations() if op.gate.num_qubits == 2)

    def has_branches(self) -> bool:
        return any(stmt.branch_count() > 1 for stmt in self._statements)

    def operations(self) -> Iterator[GateOp]:
        """Iterate gate applications (branch-free circuits only)."""
        return self.to_program().operations()

    def depth(self) -> int:
        """Circuit depth: number of moments of non-overlapping gates."""
        frontier = [0] * self._num_qubits
        depth = 0
        for op in self.operations():
            start = max(frontier[q] for q in op.qubits)
            for q in op.qubits:
                frontier[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    # -- gate application ----------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> tuple[int, ...]:
        out = tuple(int(q) for q in qubits)
        for q in out:
            if q < 0 or q >= self._num_qubits:
                raise CircuitError(
                    f"qubit {q} outside register of size {self._num_qubits}"
                )
        return out

    def append(self, gate: Gate, *qubits: int) -> "Circuit":
        """Append an arbitrary gate; returns ``self`` for chaining."""
        self._statements.append(GateOp(gate, self._check_qubits(qubits)))
        return self

    def append_statement(self, statement: Program) -> "Circuit":
        """Append an already-built AST node (used by transforms)."""
        for q in statement.qubits_used():
            if q < 0 or q >= self._num_qubits:
                raise CircuitError(
                    f"statement uses qubit {q} outside register of size {self._num_qubits}"
                )
        self._statements.append(statement)
        return self

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all statements of another circuit (register sizes must agree)."""
        if other.num_qubits > self._num_qubits:
            raise CircuitError(
                f"cannot extend a {self._num_qubits}-qubit circuit with a "
                f"{other.num_qubits}-qubit circuit"
            )
        self._statements.extend(other._statements)
        return self

    # Named helpers for the standard library ----------------------------------
    def i(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.identity(), qubit)

    def x(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.x(), qubit)

    def y(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.y(), qubit)

    def z(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.z(), qubit)

    def h(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.h(), qubit)

    def s(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.s(), qubit)

    def sdg(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.sdg(), qubit)

    def t(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.t(), qubit)

    def tdg(self, qubit: int) -> "Circuit":
        return self.append(gate_lib.tdg(), qubit)

    def rx(self, theta: float, qubit: int) -> "Circuit":
        return self.append(gate_lib.rx(theta), qubit)

    def ry(self, theta: float, qubit: int) -> "Circuit":
        return self.append(gate_lib.ry(theta), qubit)

    def rz(self, theta: float, qubit: int) -> "Circuit":
        return self.append(gate_lib.rz(theta), qubit)

    def p(self, phi: float, qubit: int) -> "Circuit":
        return self.append(gate_lib.phase(phi), qubit)

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "Circuit":
        return self.append(gate_lib.u3(theta, phi, lam), qubit)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append(gate_lib.cx(), control, target)

    def cnot(self, control: int, target: int) -> "Circuit":
        return self.cx(control, target)

    def cz(self, control: int, target: int) -> "Circuit":
        return self.append(gate_lib.cz(), control, target)

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append(gate_lib.swap(), a, b)

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.append(gate_lib.rzz(theta), a, b)

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self.append(gate_lib.crz(theta), control, target)

    def unitary(self, matrix: np.ndarray, *qubits: int, name: str = "unitary") -> "Circuit":
        """Append a custom unitary acting on the given qubits."""
        gate = gate_lib.custom_gate(name, matrix)
        if gate.num_qubits != len(qubits):
            raise CircuitError(
                f"matrix acts on {gate.num_qubits} qubits but {len(qubits)} were given"
            )
        return self.append(gate, *qubits)

    def if_measure(
        self,
        qubit: int,
        then_builder: Callable[["Circuit"], None],
        else_builder: Callable[["Circuit"], None] | None = None,
    ) -> "Circuit":
        """Append an ``if qubit = |0> then ... else ...`` statement.

        The builders receive a fresh sub-circuit over the same register and
        populate the respective branch::

            circuit.if_measure(1, lambda c: c.x(0), lambda c: c.z(0))
        """
        (qubit,) = self._check_qubits([qubit])
        then_circuit = Circuit(self._num_qubits, name=f"{self._name}:then")
        then_builder(then_circuit)
        else_circuit = Circuit(self._num_qubits, name=f"{self._name}:else")
        if else_builder is not None:
            else_builder(else_circuit)
        self._statements.append(
            IfMeasure(qubit, then_circuit.to_program(), else_circuit.to_program())
        )
        return self

    # -- layer helpers ---------------------------------------------------------
    def h_layer(self, qubits: Iterable[int] | None = None) -> "Circuit":
        """Apply a Hadamard to every (or each listed) qubit."""
        for q in range(self._num_qubits) if qubits is None else qubits:
            self.h(q)
        return self

    def rx_layer(self, theta: float, qubits: Iterable[int] | None = None) -> "Circuit":
        """Apply ``rx(theta)`` to every (or each listed) qubit."""
        for q in range(self._num_qubits) if qubits is None else qubits:
            self.rx(theta, q)
        return self

    # -- conversions ------------------------------------------------------------
    def to_program(self) -> Program:
        """The AST of this circuit (a Seq of its statements, or Skip)."""
        if not self._statements:
            return Skip()
        return seq(*self._statements)

    @classmethod
    def from_program(
        cls, program: Program, num_qubits: int | None = None, *, name: str = "circuit"
    ) -> "Circuit":
        """Build a circuit from a branch-free program AST."""
        n = num_qubits if num_qubits is not None else max(program.num_qubits, 1)
        circuit = cls(n, name=name)
        for op in program.operations():
            circuit.append(op.gate, *op.qubits)
        return circuit

    def copy(self, *, name: str | None = None) -> "Circuit":
        clone = Circuit(self._num_qubits, name=name or self._name)
        clone._statements = list(self._statements)
        return clone

    def inverse(self) -> "Circuit":
        """The inverse circuit (branch-free circuits only)."""
        inverse = Circuit(self._num_qubits, name=f"{self._name}_inverse")
        for op in reversed(list(self.operations())):
            inverse.append(op.gate.dagger(), *op.qubits)
        return inverse

    def remap(
        self, mapping: Sequence[int] | dict[int, int], num_qubits: int | None = None
    ) -> "Circuit":
        """Relabel qubits according to ``mapping`` (logical -> physical).

        ``mapping`` may be a sequence (``mapping[logical] = physical``) or a
        dictionary.  Used by the device-mapping experiments (Table 3).
        """
        if isinstance(mapping, dict):
            lookup = dict(mapping)
        else:
            lookup = {logical: physical for logical, physical in enumerate(mapping)}
        target_size = num_qubits if num_qubits is not None else max(lookup.values()) + 1
        remapped = Circuit(target_size, name=f"{self._name}_mapped")
        for op in self.operations():
            try:
                new_qubits = [lookup[q] for q in op.qubits]
            except KeyError as exc:
                raise CircuitError(f"qubit {exc.args[0]} missing from mapping") from exc
            remapped.append(op.gate, *new_qubits)
        return remapped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit(name={self._name!r}, num_qubits={self._num_qubits}, "
            f"gates={self.gate_count()})"
        )
