"""Exception hierarchy used across the Gleipnir reproduction.

All library-specific errors derive from :class:`ReproError`, so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CircuitError(ReproError):
    """Raised for malformed quantum programs or circuit operations.

    Examples: applying a 2-qubit gate to a single qubit, referencing a qubit
    outside the program's register, or parsing an invalid circuit text.
    """


class GateError(CircuitError):
    """Raised when a gate definition is inconsistent (wrong shape, not unitary)."""


class SimulationError(ReproError):
    """Raised when a simulator is asked to do something it cannot represent."""


class ResourceLimitExceeded(SimulationError):
    """Raised when a computation would exceed the configured resource budget.

    This mirrors the 24-hour timeout used in the paper's evaluation for the
    full-simulation baseline: instead of burning wall-clock time, the dense
    simulators refuse to allocate exponential state beyond the configured
    qubit budget (see :class:`repro.config.ResourceGuard`).
    """


class NoiseModelError(ReproError):
    """Raised for inconsistent noise model definitions (non-CPTP channels, ...)."""


class MPSError(ReproError):
    """Raised for invalid Matrix Product State operations."""


class SDPError(ReproError):
    """Raised when an SDP cannot be constructed or certified."""


class CertificationError(SDPError):
    """Raised when a dual certificate cannot be repaired to feasibility."""


class LogicError(ReproError):
    """Raised when an inference rule of the quantum error logic is misapplied."""


class DerivationCheckError(LogicError):
    """Raised when re-validation of a derivation tree finds an unsound step."""


class DeviceError(ReproError):
    """Raised for invalid device descriptions, mappings, or calibration data."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid configurations."""


class MetricError(ReproError):
    """Raised for unknown metric names or invalid metric comparisons.

    Examples: looking up a metric name nobody registered, comparing channels
    of mismatched dimensions, or registering two metrics under one name.
    Over ``/v1`` this maps to a 400 envelope like every other payload error.
    """


class EngineError(ReproError):
    """Raised by the analysis engine for invalid jobs, payloads, or stores.

    Examples: serialising a noise model backed by an opaque channel factory,
    deserialising a job payload with an unknown schema version, or submitting
    a malformed job to the serving front-end.
    """


class StorageBackendError(EngineError):
    """Raised when a storage URL names an unknown or unusable backend scheme.

    Carries the supported scheme list so operators see what *would* work
    (``redis://`` is a popular guess); surfaces as a 400 envelope over
    ``/v1`` and as a clean one-line error from the ``gleipnir-serve`` CLI.
    """

    def __init__(self, message: str, *, scheme: str | None = None,
                 supported: tuple[str, ...] = ()):
        super().__init__(message)
        self.scheme = scheme
        self.supported = tuple(supported)


class JobNotFoundError(EngineError):
    """Raised when a job fingerprint is unknown to the service and its store."""


class BatchLimitExceeded(EngineError):
    """Raised when one submission exceeds the service's per-batch job limit."""


# ---------------------------------------------------------------------------
# Wire format: structured error envelopes for the /v1 HTTP surface
# ---------------------------------------------------------------------------

def _error_types() -> dict[str, type]:
    """Every concrete :class:`ReproError` subclass, by class name."""
    types: dict[str, type] = {"ReproError": ReproError}
    pending = [ReproError]
    while pending:
        for subclass in pending.pop().__subclasses__():
            types[subclass.__name__] = subclass
            pending.append(subclass)
    return types


def error_envelope(exc: BaseException, *, status: int) -> dict:
    """The machine-readable JSON envelope the /v1 service returns for ``exc``.

    The ``type`` field carries the :class:`ReproError` subclass name so a
    client can re-raise the exact exception class; ``repro_error`` tells
    foreign clients whether the type belongs to this hierarchy at all.
    """
    return {
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "status": int(status),
            "repro_error": isinstance(exc, ReproError),
        }
    }


def error_from_envelope(payload: dict, *, status: int | None = None) -> Exception:
    """Reconstruct the exception a /v1 error envelope describes.

    Unknown or foreign types degrade to :class:`EngineError` (for 4xx/None)
    so callers can still catch everything service-shaped with one clause.
    """
    entry = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(entry, dict):
        message = str(payload) if payload else f"HTTP error {status}"
        return EngineError(message)
    message = str(entry.get("message", "unknown service error"))
    cls = _error_types().get(str(entry.get("type")), EngineError)
    return cls(message)
