"""Version information for the Gleipnir reproduction package."""

__version__ = "1.0.0"
