"""Quantum channels (superoperators) and their representations.

Quantum gates, measurements, and noise are all completely positive
trace-preserving (CPTP) maps on density matrices (Section 2.1).  This module
implements the three standard representations and the conversions between
them:

* **Kraus**: ``E(rho) = sum_k K_k rho K_k^dagger``;
* **Choi**: ``J(E) = (E ⊗ id)(|Omega><Omega|)`` with the *unnormalised*
  maximally entangled vector ``|Omega> = sum_i |i>|i>``.  The first tensor
  factor of the Choi matrix is the channel output, the second the reference
  copy of the input.  This is the convention used by the diamond-norm SDPs in
  :mod:`repro.sdp`;
* **Liouville** (superoperator matrix) acting on row-major vectorised density
  matrices: ``vec(E(rho)) = S vec(rho)`` with ``S = sum_k K_k ⊗ conj(K_k)``.

The :class:`QuantumChannel` class is immutable and caches the representations
it has computed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import NoiseModelError
from .codec import complex_matrix_from_json, complex_matrix_to_json
from .operators import embed_operator, is_unitary
from .partial_trace import partial_trace_keep

__all__ = [
    "QuantumChannel",
    "kraus_to_choi",
    "choi_stack",
    "unitary_conjugate_stack",
    "choi_to_kraus",
    "kraus_to_liouville",
    "liouville_to_choi",
    "choi_to_liouville",
    "apply_kraus",
    "is_cptp_kraus",
    "choi_is_trace_preserving",
    "choi_output_trace_map",
    "identity_channel",
    "unitary_channel",
    "channel_difference_choi",
]


def _vec(matrix: np.ndarray) -> np.ndarray:
    """Row-major vectorisation, consistent with the Choi convention above."""
    return np.asarray(matrix, dtype=np.complex128).reshape(-1)


def apply_kraus(kraus: Sequence[np.ndarray], rho: np.ndarray) -> np.ndarray:
    """Apply a channel given by Kraus operators to a density matrix."""
    rho = np.asarray(rho, dtype=np.complex128)
    out = np.zeros(
        (kraus[0].shape[0], kraus[0].shape[0]), dtype=np.complex128
    )
    for k in kraus:
        out += k @ rho @ k.conj().T
    return out


def kraus_to_choi(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """Choi matrix ``J = sum_k vec(K_k) vec(K_k)^dagger`` (output ⊗ input).

    Computed as one Gram product ``V^T V*`` over the stacked Kraus vectors —
    the same formula :func:`choi_stack` applies to a whole group of channels
    at once, so a channel's Choi matrix is bit-identical whether it was
    computed alone or as part of a stacked group.
    """
    vectors = np.stack([_vec(k) for k in kraus])
    return vectors.T @ vectors.conj()


def choi_stack(channels: Sequence["QuantumChannel"]) -> np.ndarray:
    """Stacked Choi matrices ``(len(channels), d*d', d*d')`` of same-arity channels.

    All channels must share one ``(dim_out, dim_in)``.  Channels that already
    cached their Choi matrix contribute the cached array; the remaining ones
    are computed with one batched Gram product per distinct Kraus count and
    the results are written back into each channel's cache, so a later
    ``channel.choi()`` call returns the identical array.  Per-channel results
    are independent of the group composition (each Gram product only sees its
    own channel's Kraus vectors), which keeps batched and one-at-a-time
    reductions bit-identical.
    """
    if not channels:
        raise NoiseModelError("choi_stack needs at least one channel")
    shape = (channels[0].dim_out, channels[0].dim_in)
    if any((ch.dim_out, ch.dim_in) != shape for ch in channels):
        raise NoiseModelError("choi_stack requires channels of one arity")
    missing: dict[int, list[int]] = {}
    for index, channel in enumerate(channels):
        if channel._choi is None:
            missing.setdefault(len(channel.kraus), []).append(index)
    for indices in missing.values():
        # One (C, K, D) stack per Kraus count: J_c = V_c^T V_c* as a batched
        # Gram product, no padding, so each element matches kraus_to_choi.
        vectors = np.stack(
            [
                np.stack([_vec(k) for k in channels[i].kraus])
                for i in indices
            ]
        )
        chois = vectors.swapaxes(-1, -2) @ vectors.conj()
        for row, index in enumerate(indices):
            channels[index]._choi = chois[row]
    return np.stack([channel.choi() for channel in channels])


def unitary_conjugate_stack(unitaries: np.ndarray, states: np.ndarray) -> np.ndarray:
    """Batched conjugation ``U rho U^dagger`` over stacks of matrices.

    ``unitaries`` and ``states`` broadcast against each other on their leading
    axes; the result per element is bit-identical to conjugating that element
    alone (stacked matmul applies the same per-element GEMM).  Used by the
    batched structural-reduction front-end to push local predicates through
    the ideal gates of a whole request in two matmuls.
    """
    unitaries = np.asarray(unitaries, dtype=np.complex128)
    states = np.asarray(states, dtype=np.complex128)
    return unitaries @ states @ unitaries.conj().swapaxes(-1, -2)


def choi_to_kraus(choi: np.ndarray, *, atol: float = 1e-10) -> list[np.ndarray]:
    """Kraus operators of a CP map from its Choi matrix (eigendecomposition)."""
    choi = np.asarray(choi, dtype=np.complex128)
    choi = (choi + choi.conj().T) / 2
    dim_sq = choi.shape[0]
    dim = int(round(np.sqrt(dim_sq)))
    if dim * dim != dim_sq:
        raise NoiseModelError(
            f"Choi matrix dimension {dim_sq} is not a perfect square"
        )
    vals, vecs = np.linalg.eigh(choi)
    if vals.min() < -1e-7 * max(1.0, vals.max()):
        raise NoiseModelError(
            f"Choi matrix is not positive semidefinite (min eigenvalue {vals.min():.3e})"
        )
    kraus = []
    for value, vector in zip(vals, vecs.T):
        if value <= atol:
            continue
        kraus.append(np.sqrt(value) * vector.reshape(dim, dim))
    if not kraus:
        kraus.append(np.zeros((dim, dim), dtype=np.complex128))
    return kraus


def kraus_to_liouville(kraus: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator matrix acting on row-major vectorised density matrices."""
    dim_out, dim_in = np.asarray(kraus[0]).shape
    liouville = np.zeros((dim_out * dim_out, dim_in * dim_in), dtype=np.complex128)
    for k in kraus:
        k = np.asarray(k, dtype=np.complex128)
        liouville += np.kron(k, k.conj())
    return liouville


def choi_to_liouville(choi: np.ndarray) -> np.ndarray:
    """Convert a Choi matrix (output ⊗ input) into a Liouville matrix."""
    choi = np.asarray(choi, dtype=np.complex128)
    dim = int(round(np.sqrt(choi.shape[0])))
    # J[(o1, i1), (o2, i2)] = S[(o1, o2), (i1, i2)]
    tensor = choi.reshape(dim, dim, dim, dim)
    liouville = tensor.transpose(0, 2, 1, 3).reshape(dim * dim, dim * dim)
    return liouville


def liouville_to_choi(liouville: np.ndarray) -> np.ndarray:
    """Convert a Liouville matrix (row-major vec convention) into a Choi matrix."""
    liouville = np.asarray(liouville, dtype=np.complex128)
    dim = int(round(np.sqrt(liouville.shape[0])))
    tensor = liouville.reshape(dim, dim, dim, dim)
    choi = tensor.transpose(0, 2, 1, 3).reshape(dim * dim, dim * dim)
    return choi


def choi_output_trace_map(choi: np.ndarray) -> np.ndarray:
    """Partial trace of the Choi matrix over the *output* factor.

    For a trace-preserving map this equals the identity on the input space;
    the dual of the diamond-norm SDP uses the same operation on the dual
    variable Z (Section 6).  Accepts a stack ``(..., d², d²)`` of Choi
    matrices and maps each one, so the batch certification pass traces a
    whole candidate stack in one call.
    """
    choi = np.asarray(choi, dtype=np.complex128)
    dim = int(round(np.sqrt(choi.shape[-1])))
    tensor = choi.reshape(choi.shape[:-2] + (dim, dim, dim, dim))
    return np.trace(tensor, axis1=-4, axis2=-2)


def choi_is_trace_preserving(choi: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Whether the Choi matrix corresponds to a trace-preserving map."""
    reduced = choi_output_trace_map(choi)
    return bool(np.allclose(reduced, np.eye(reduced.shape[0]), atol=atol))


def is_cptp_kraus(kraus: Sequence[np.ndarray], *, atol: float = 1e-8) -> bool:
    """Whether a set of Kraus operators defines a CPTP map."""
    dim_in = np.asarray(kraus[0]).shape[1]
    acc = np.zeros((dim_in, dim_in), dtype=np.complex128)
    for k in kraus:
        k = np.asarray(k, dtype=np.complex128)
        acc += k.conj().T @ k
    return bool(np.allclose(acc, np.eye(dim_in), atol=atol))


class QuantumChannel:
    """An immutable CP map with cached Kraus / Choi / Liouville representations.

    Construct with :meth:`from_kraus`, :meth:`from_unitary`, :meth:`from_choi`
    or :meth:`identity`.  Channels compose with ``@`` (``a @ b`` means "apply
    b first, then a", matching function composition) and combine in parallel
    with :meth:`tensor`.
    """

    def __init__(self, kraus: Sequence[np.ndarray], *, name: str | None = None):
        if not kraus:
            raise NoiseModelError("a channel needs at least one Kraus operator")
        mats = [np.asarray(k, dtype=np.complex128) for k in kraus]
        shape = mats[0].shape
        if any(m.shape != shape for m in mats):
            raise NoiseModelError("all Kraus operators must have the same shape")
        if len(shape) != 2:
            raise NoiseModelError("Kraus operators must be matrices")
        self._kraus = tuple(m.copy() for m in mats)
        self._name = name or "channel"
        self._choi: np.ndarray | None = None
        self._liouville: np.ndarray | None = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_kraus(
        cls, kraus: Sequence[np.ndarray], *, name: str | None = None
    ) -> "QuantumChannel":
        return cls(kraus, name=name)

    @classmethod
    def from_unitary(cls, unitary: np.ndarray, *, name: str | None = None) -> "QuantumChannel":
        unitary = np.asarray(unitary, dtype=np.complex128)
        if not is_unitary(unitary, atol=1e-7):
            raise NoiseModelError("from_unitary requires a unitary matrix")
        return cls([unitary], name=name or "unitary")

    @classmethod
    def from_choi(cls, choi: np.ndarray, *, name: str | None = None) -> "QuantumChannel":
        return cls(choi_to_kraus(choi), name=name or "choi")

    @classmethod
    def identity(cls, dim: int) -> "QuantumChannel":
        return cls([np.eye(dim, dtype=np.complex128)], name="id")

    # -- representations --------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def kraus(self) -> tuple[np.ndarray, ...]:
        return self._kraus

    @property
    def dim_in(self) -> int:
        return self._kraus[0].shape[1]

    @property
    def dim_out(self) -> int:
        return self._kraus[0].shape[0]

    @property
    def num_qubits(self) -> int:
        n = int(round(np.log2(self.dim_in)))
        if 2**n != self.dim_in:
            raise NoiseModelError("channel does not act on a qubit register")
        return n

    def choi(self) -> np.ndarray:
        if self._choi is None:
            self._choi = kraus_to_choi(self._kraus)
        return self._choi

    def liouville(self) -> np.ndarray:
        if self._liouville is None:
            self._liouville = kraus_to_liouville(self._kraus)
        return self._liouville

    # -- behaviour --------------------------------------------------------
    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix."""
        return apply_kraus(self._kraus, rho)

    def __call__(self, rho: np.ndarray) -> np.ndarray:
        return self.apply(rho)

    def compose(self, other: "QuantumChannel") -> "QuantumChannel":
        """Sequential composition ``self ∘ other`` (apply ``other`` first)."""
        if other.dim_out != self.dim_in:
            raise NoiseModelError(
                f"cannot compose: inner dimensions {other.dim_out} != {self.dim_in}"
            )
        kraus = [a @ b for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus, name=f"{self._name}∘{other._name}")

    def __matmul__(self, other: "QuantumChannel") -> "QuantumChannel":
        return self.compose(other)

    def tensor(self, other: "QuantumChannel") -> "QuantumChannel":
        """Parallel composition ``self ⊗ other``."""
        kraus = [np.kron(a, b) for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus, name=f"{self._name}⊗{other._name}")

    def adjoint(self) -> "QuantumChannel":
        """The adjoint (Heisenberg-picture) map, with Kraus ``K_k^dagger``."""
        return QuantumChannel([k.conj().T for k in self._kraus], name=f"{self._name}†")

    def embed(self, qubits: Sequence[int], num_qubits: int) -> "QuantumChannel":
        """Extend the channel with identities to act on an n-qubit register."""
        kraus = [embed_operator(k, qubits, num_qubits) for k in self._kraus]
        return QuantumChannel(kraus, name=f"{self._name}@{tuple(qubits)}")

    # -- predicates & diagnostics ----------------------------------------
    def is_trace_preserving(self, *, atol: float = 1e-8) -> bool:
        return is_cptp_kraus(self._kraus, atol=atol)

    def is_cptp(self, *, atol: float = 1e-8) -> bool:
        return self.is_trace_preserving(atol=atol)

    def is_unitary_channel(self, *, atol: float = 1e-8) -> bool:
        return len(self._kraus) == 1 and is_unitary(self._kraus[0], atol=atol)

    def output_reduced_on(self, rho: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Apply the channel, then reduce the output onto ``qubits``."""
        return partial_trace_keep(self.apply(rho), qubits)

    # -- serialization ----------------------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical dict form: the Kraus operators as nested ``[re, im]`` pairs.

        Used by the analysis engine to ship noise models across process
        boundaries and to fingerprint jobs (:mod:`repro.engine.spec`).
        """
        return {
            "name": self._name,
            "kraus": [complex_matrix_to_json(operator) for operator in self._kraus],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "QuantumChannel":
        """Inverse of :meth:`to_json_dict`."""
        try:
            kraus = [complex_matrix_from_json(operator) for operator in payload["kraus"]]
            name = payload.get("name")
        except (TypeError, KeyError, ValueError) as exc:
            raise NoiseModelError(f"malformed channel payload: {exc}") from exc
        return cls(kraus, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumChannel(name={self._name!r}, dim_in={self.dim_in}, "
            f"dim_out={self.dim_out}, num_kraus={len(self._kraus)})"
        )


def identity_channel(num_qubits: int) -> QuantumChannel:
    """The identity channel on ``num_qubits`` qubits."""
    return QuantumChannel.identity(2**num_qubits)


def unitary_channel(unitary: np.ndarray, *, name: str | None = None) -> QuantumChannel:
    """Channel ``rho -> U rho U^dagger`` for a unitary gate matrix."""
    return QuantumChannel.from_unitary(unitary, name=name)


def channel_difference_choi(noisy: QuantumChannel, ideal: QuantumChannel) -> np.ndarray:
    """Choi matrix of the Hermitian-preserving difference map ``noisy - ideal``.

    This is the ``Phi = U - E`` object fed to the diamond-norm SDPs of
    Section 6 (note the paper writes the ideal map first; the diamond norm is
    symmetric in the sign of the difference, and so are our SDP bounds).
    """
    if noisy.dim_in != ideal.dim_in or noisy.dim_out != ideal.dim_out:
        raise NoiseModelError("channels must share input and output dimensions")
    return noisy.choi() - ideal.choi()
