"""Quantum state construction and basic state-level utilities.

States follow the conventions of the paper (Section 2.1):

* a pure ``n``-qubit state is a unit vector in the ``2**n``-dimensional
  Hilbert space, written ``|s_0 s_1 ... s_{n-1}>`` where qubit 0 is the
  *most significant* bit of the computational-basis index;
* a mixed state is a density matrix ``rho`` (positive semidefinite,
  trace one).

All functions return plain ``numpy.ndarray`` objects with ``complex128``
dtype so they compose freely with the rest of the library.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = [
    "basis_state",
    "ket",
    "bra",
    "zero_state",
    "plus_state",
    "computational_basis",
    "density_matrix",
    "pure_density",
    "product_state",
    "product_density",
    "ghz_state",
    "w_state",
    "maximally_mixed",
    "maximally_entangled",
    "is_density_matrix",
    "is_normalized",
    "purity",
    "fidelity",
    "state_overlap",
    "random_statevector",
    "random_density_matrix",
    "random_pure_density",
    "bloch_vector",
    "density_from_bloch",
    "num_qubits_of",
]


def _as_complex(array: np.ndarray | Sequence) -> np.ndarray:
    return np.asarray(array, dtype=np.complex128)


def num_qubits_of(obj: np.ndarray) -> int:
    """Infer the number of qubits of a state vector or density matrix.

    Raises :class:`~repro.errors.SimulationError` if the dimension is not a
    power of two.
    """
    dim = obj.shape[0]
    n = int(round(np.log2(dim))) if dim > 0 else 0
    if dim <= 0 or 2**n != dim:
        raise SimulationError(f"dimension {dim} is not a power of two")
    return n


def basis_state(bits: str | Sequence[int]) -> np.ndarray:
    """Computational-basis ket ``|bits>`` as a column vector.

    ``bits`` may be a string such as ``"010"`` or a sequence of 0/1 integers.
    Qubit 0 is the leftmost character (most significant bit).
    """
    if isinstance(bits, str):
        values = [int(b) for b in bits]
    else:
        values = [int(b) for b in bits]
    if any(v not in (0, 1) for v in values):
        raise ValueError(f"basis labels must be 0/1, got {bits!r}")
    n = len(values)
    index = 0
    for v in values:
        index = (index << 1) | v
    state = np.zeros(2**n, dtype=np.complex128)
    state[index] = 1.0
    return state


def ket(label: str | Sequence[int]) -> np.ndarray:
    """Alias of :func:`basis_state`; reads like Dirac notation in user code."""
    return basis_state(label)


def bra(label: str | Sequence[int]) -> np.ndarray:
    """Conjugate transpose of :func:`ket` (a row vector)."""
    return basis_state(label).conj()


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros state ``|0...0>`` on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    return basis_state([0] * num_qubits)


def plus_state(num_qubits: int) -> np.ndarray:
    """The uniform superposition ``|+...+>`` on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    return np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)


def computational_basis(num_qubits: int) -> list[np.ndarray]:
    """All ``2**num_qubits`` computational-basis kets, in index order."""
    dim = 2**num_qubits
    return [np.eye(dim, dtype=np.complex128)[:, i] for i in range(dim)]


def density_matrix(state: np.ndarray) -> np.ndarray:
    """Density matrix of a pure state vector, ``|psi><psi|``.

    If ``state`` is already a square matrix it is returned unchanged (after a
    dtype cast), which lets callers accept either representation.
    """
    arr = _as_complex(state)
    if arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        return arr
    if arr.ndim != 1:
        raise SimulationError(f"expected a vector or square matrix, got shape {arr.shape}")
    return np.outer(arr, arr.conj())


def pure_density(state: np.ndarray) -> np.ndarray:
    """Density matrix of a pure state (always forms the outer product)."""
    arr = _as_complex(state)
    if arr.ndim != 1:
        raise SimulationError(f"expected a state vector, got shape {arr.shape}")
    return np.outer(arr, arr.conj())


def product_state(bits: str | Sequence[int]) -> np.ndarray:
    """Product computational-basis state ``|bits>`` (same as :func:`basis_state`)."""
    return basis_state(bits)


def product_density(bits: str | Sequence[int]) -> np.ndarray:
    """Density matrix of a product computational-basis state."""
    return pure_density(basis_state(bits))


def ghz_state(num_qubits: int) -> np.ndarray:
    """The n-qubit GHZ state ``(|0...0> + |1...1>)/sqrt(2)`` (Example 2.1)."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    state = np.zeros(2**num_qubits, dtype=np.complex128)
    state[0] = 1.0 / np.sqrt(2.0)
    state[-1] = 1.0 / np.sqrt(2.0)
    return state


def w_state(num_qubits: int) -> np.ndarray:
    """The n-qubit W state, an equal superposition of single-excitation kets."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    state = np.zeros(2**num_qubits, dtype=np.complex128)
    for k in range(num_qubits):
        state[1 << (num_qubits - 1 - k)] = 1.0
    return state / np.sqrt(num_qubits)


def maximally_mixed(num_qubits: int) -> np.ndarray:
    """The maximally mixed density matrix ``I / 2**n``."""
    dim = 2**num_qubits
    return np.eye(dim, dtype=np.complex128) / dim


def maximally_entangled(dim: int, *, normalized: bool = True) -> np.ndarray:
    """The maximally entangled vector ``sum_i |i>|i>`` on a ``dim x dim`` system.

    Used by the Choi–Jamiołkowski isomorphism.  With ``normalized=False`` the
    un-normalised vector (norm ``sqrt(dim)``) is returned, matching the
    convention used for Choi matrices in :mod:`repro.linalg.channels`.
    """
    vec = np.zeros(dim * dim, dtype=np.complex128)
    for i in range(dim):
        vec[i * dim + i] = 1.0
    if normalized:
        vec /= np.sqrt(dim)
    return vec


def is_normalized(state: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Whether a state vector has unit norm."""
    return bool(abs(np.linalg.norm(state) - 1.0) <= atol)


def is_density_matrix(rho: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Whether ``rho`` is a valid density matrix (Hermitian, PSD, trace 1)."""
    rho = _as_complex(rho)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if abs(np.trace(rho).real - 1.0) > max(atol, 1e-8):
        return False
    eigenvalues = np.linalg.eigvalsh((rho + rho.conj().T) / 2)
    return bool(eigenvalues.min() >= -atol * 10)


def purity(rho: np.ndarray) -> float:
    """Purity ``tr(rho^2)`` of a density matrix (1 for pure states)."""
    rho = density_matrix(rho)
    return float(np.real(np.trace(rho @ rho)))


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``(tr sqrt(sqrt(rho) sigma sqrt(rho)))**2``.

    Both arguments may be state vectors or density matrices.
    """
    rho = density_matrix(rho)
    sigma = density_matrix(sigma)
    # Symmetrise for numerical stability before the matrix square roots.
    rho = (rho + rho.conj().T) / 2
    sigma = (sigma + sigma.conj().T) / 2
    vals, vecs = np.linalg.eigh(rho)
    vals = np.clip(vals, 0.0, None)
    sqrt_rho = (vecs * np.sqrt(vals)) @ vecs.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner = (inner + inner.conj().T) / 2
    inner_vals = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(np.sum(np.sqrt(inner_vals)) ** 2)


def state_overlap(psi: np.ndarray, phi: np.ndarray) -> complex:
    """Inner product ``<psi|phi>`` of two state vectors."""
    return complex(np.vdot(psi, phi))


def random_statevector(num_qubits: int, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """A Haar-random pure state on ``num_qubits`` qubits."""
    rng = rng or np.random.default_rng()
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_pure_density(num_qubits: int, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """Density matrix of a Haar-random pure state."""
    return pure_density(random_statevector(num_qubits, rng=rng))


def random_density_matrix(
    num_qubits: int,
    *,
    rank: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A random mixed state obtained by partial trace of a larger pure state.

    ``rank`` controls the number of pure states in the mixture (defaults to
    the full dimension).
    """
    rng = rng or np.random.default_rng()
    dim = 2**num_qubits
    rank = dim if rank is None else max(1, min(rank, dim))
    mat = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = mat @ mat.conj().T
    return rho / np.trace(rho)


def bloch_vector(rho: np.ndarray) -> np.ndarray:
    """Bloch vector ``(x, y, z)`` of a single-qubit density matrix."""
    rho = density_matrix(rho)
    if rho.shape != (2, 2):
        raise SimulationError("Bloch vectors are defined for single qubits only")
    x = 2 * rho[0, 1].real
    y = 2 * rho[1, 0].imag
    z = (rho[0, 0] - rho[1, 1]).real
    return np.array([x, y, z], dtype=float)


def density_from_bloch(vector: Iterable[float]) -> np.ndarray:
    """Single-qubit density matrix with the given Bloch vector."""
    x, y, z = (float(v) for v in vector)
    if x * x + y * y + z * z > 1.0 + 1e-9:
        raise ValueError("Bloch vector must lie inside the unit ball")
    return 0.5 * np.array(
        [[1 + z, x - 1j * y], [x + 1j * y, 1 - z]], dtype=np.complex128
    )
