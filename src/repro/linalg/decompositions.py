"""Spectral and singular-value helpers used across the library.

These small wrappers centralise the numerically delicate pieces (clipping
negative eigenvalues, symmetrising inputs) so the MPS truncation code and the
SDP certificate code behave consistently.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hermitian_eig",
    "positive_part",
    "negative_part",
    "positive_negative_split",
    "psd_projection",
    "nearest_density_matrix",
    "truncated_svd",
    "matrix_sqrt",
    "purification",
    "min_eigenvalue",
]


def _symmetrise(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.complex128)
    return (matrix + matrix.conj().T) / 2


def hermitian_eig(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues and eigenvectors of (the Hermitian part of) a matrix."""
    return np.linalg.eigh(_symmetrise(matrix))


def min_eigenvalue(matrix: np.ndarray) -> float:
    """Smallest eigenvalue of the Hermitian part of a matrix."""
    return float(np.linalg.eigvalsh(_symmetrise(matrix)).min())


def positive_part(matrix: np.ndarray) -> np.ndarray:
    """Positive part ``A_+`` of a Hermitian matrix (``A = A_+ - A_-``)."""
    vals, vecs = hermitian_eig(matrix)
    vals = np.clip(vals, 0.0, None)
    return (vecs * vals) @ vecs.conj().T


def negative_part(matrix: np.ndarray) -> np.ndarray:
    """Negative part ``A_-`` of a Hermitian matrix (PSD, ``A = A_+ - A_-``)."""
    vals, vecs = hermitian_eig(matrix)
    vals = np.clip(-vals, 0.0, None)
    return (vecs * vals) @ vecs.conj().T


def positive_negative_split(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Both parts of the Jordan decomposition of a Hermitian matrix."""
    vals, vecs = hermitian_eig(matrix)
    pos = (vecs * np.clip(vals, 0.0, None)) @ vecs.conj().T
    neg = (vecs * np.clip(-vals, 0.0, None)) @ vecs.conj().T
    return pos, neg


def psd_projection(matrix: np.ndarray) -> np.ndarray:
    """Projection of a Hermitian matrix onto the PSD cone (same as A_+)."""
    return positive_part(matrix)


def nearest_density_matrix(matrix: np.ndarray) -> np.ndarray:
    """Project a Hermitian matrix onto the set of density matrices.

    Uses the standard simplex projection of the eigenvalue vector, which gives
    the closest density matrix in Frobenius norm.
    """
    vals, vecs = hermitian_eig(matrix)
    # Project eigenvalues onto the probability simplex.
    descending = np.sort(vals)[::-1]
    cumulative = np.cumsum(descending)
    indices = np.arange(1, len(vals) + 1)
    mask = descending - (cumulative - 1.0) / indices > 0
    k = int(np.nonzero(mask)[0].max()) + 1
    tau = (cumulative[k - 1] - 1.0) / k
    projected = np.clip(vals - tau, 0.0, None)
    return (vecs * projected) @ vecs.conj().T


def truncated_svd(
    matrix: np.ndarray, max_rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
    """SVD with truncation to ``max_rank`` singular values.

    Returns ``(U, s, Vh, discarded_weight, total_weight)`` where the weights
    are sums of squared singular values.  The truncation error accounting of
    the MPS approximator (Section 5.2) derives the trace-norm error from the
    discarded/total weights.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    u, s, vh = np.linalg.svd(matrix, full_matrices=False)
    total_weight = float(np.sum(s**2))
    max_rank = max(1, int(max_rank))
    kept = min(max_rank, s.size)
    discarded_weight = float(np.sum(s[kept:] ** 2))
    return u[:, :kept], s[:kept], vh[:kept, :], discarded_weight, total_weight


def matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a PSD matrix (eigenvalues clipped at zero)."""
    vals, vecs = hermitian_eig(matrix)
    vals = np.clip(vals, 0.0, None)
    return (vecs * np.sqrt(vals)) @ vecs.conj().T


def purification(rho: np.ndarray) -> np.ndarray:
    """A purification ``|psi>`` of ``rho`` on a doubled system.

    The output lives on ``dim**2`` dimensions with the original system first,
    i.e. ``Tr_2 |psi><psi| = rho``.  Used by the brute-force diamond norm
    verifier (the maximisation over inputs may always take a purified input).
    """
    rho = _symmetrise(rho)
    vals, vecs = np.linalg.eigh(rho)
    vals = np.clip(vals, 0.0, None)
    dim = rho.shape[0]
    psi = np.zeros(dim * dim, dtype=np.complex128)
    for k in range(dim):
        if vals[k] <= 0:
            continue
        psi += np.sqrt(vals[k]) * np.kron(vecs[:, k], _unit(dim, k))
    return psi


def _unit(dim: int, index: int) -> np.ndarray:
    vec = np.zeros(dim, dtype=np.complex128)
    vec[index] = 1.0
    return vec
