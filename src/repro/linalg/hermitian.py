"""Real parametrisations of Hermitian matrices.

The SDP engine (Section 6) works over Hermitian matrix variables.  ADMM-style
solvers want a real vector view of those variables with an inner product that
matches ``tr(A B)``; this module provides the standard ``svec``-like
isometry for complex Hermitian matrices together with an orthonormal
Hermitian operator basis.

For an ``n x n`` Hermitian matrix the real dimension is ``n**2``:
``n`` diagonal entries, ``n(n-1)/2`` real parts and ``n(n-1)/2`` imaginary
parts of the strict upper triangle (the off-diagonal entries are scaled by
``sqrt(2)`` so the map is an isometry for the trace inner product).
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "hermitian_dim",
    "hvec",
    "hunvec",
    "hermitian_basis",
    "random_hermitian",
    "is_hvec_consistent",
]

_SQRT2 = np.sqrt(2.0)


@functools.lru_cache(maxsize=64)
def _upper_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached strict upper-triangle indices (hvec/hunvec are called in hot loops)."""
    rows, cols = np.triu_indices(n, k=1)
    return rows, cols


def hermitian_dim(n: int) -> int:
    """Real dimension of the space of ``n x n`` Hermitian matrices."""
    return n * n


def hvec(matrix: np.ndarray) -> np.ndarray:
    """Isometric real vectorisation of a Hermitian matrix.

    The map satisfies ``hvec(A) @ hvec(B) == tr(A B)`` for Hermitian A, B.
    The input is symmetrised first, so small anti-Hermitian numerical noise is
    discarded rather than silently corrupting the embedding.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    matrix = (matrix + matrix.conj().T) / 2
    n = matrix.shape[0]
    out = np.empty(n * n, dtype=float)
    out[:n] = np.diag(matrix).real
    if n > 1:
        iu = _upper_indices(n)
        upper = matrix[iu]
        m = upper.size
        out[n : n + m] = _SQRT2 * upper.real
        out[n + m :] = _SQRT2 * upper.imag
    return out


def hunvec(vector: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`hvec`."""
    vector = np.asarray(vector, dtype=float)
    if vector.size != n * n:
        raise ValueError(f"expected a vector of length {n * n}, got {vector.size}")
    matrix = np.zeros((n, n), dtype=np.complex128)
    np.fill_diagonal(matrix, vector[:n])
    if n > 1:
        iu = _upper_indices(n)
        m = iu[0].size
        upper = (vector[n : n + m] + 1j * vector[n + m :]) / _SQRT2
        matrix[iu] = upper
        matrix[(iu[1], iu[0])] = upper.conj()
    return matrix


def hermitian_basis(n: int) -> list[np.ndarray]:
    """Orthonormal basis of the real vector space of ``n x n`` Hermitian matrices.

    The basis elements ``E_k`` satisfy ``tr(E_j E_k) = delta_{jk}``.  Order
    matches :func:`hvec`: diagonal elements first, then real off-diagonal,
    then imaginary off-diagonal.
    """
    basis: list[np.ndarray] = []
    for i in range(n):
        element = np.zeros((n, n), dtype=np.complex128)
        element[i, i] = 1.0
        basis.append(element)
    for i in range(n):
        for j in range(i + 1, n):
            element = np.zeros((n, n), dtype=np.complex128)
            element[i, j] = 1.0 / _SQRT2
            element[j, i] = 1.0 / _SQRT2
            basis.append(element)
    for i in range(n):
        for j in range(i + 1, n):
            element = np.zeros((n, n), dtype=np.complex128)
            element[i, j] = 1j / _SQRT2
            element[j, i] = -1j / _SQRT2
            basis.append(element)
    # Reorder so the imaginary elements follow the same (i, j) enumeration as
    # hvec: hvec packs all real uppers then all imaginary uppers, which is the
    # order produced above.
    return basis


def random_hermitian(n: int, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """A random Hermitian matrix with i.i.d. Gaussian entries (GUE-like)."""
    rng = rng or np.random.default_rng()
    mat = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    return (mat + mat.conj().T) / 2


def is_hvec_consistent(matrix: np.ndarray, *, atol: float = 1e-10) -> bool:
    """Round-trip check used by the property tests."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    return bool(np.allclose(hunvec(hvec(matrix), n), (matrix + matrix.conj().T) / 2, atol=atol))
