"""Partial traces and reduced (local) density matrices.

The (ρ̂, δ)-diamond norm SDP of Section 6 needs the *local density matrix* of
the approximate state on the qubits a noisy gate acts on.  This module
provides partial traces for dense density matrices with the register
convention used throughout the library (qubit 0 = most significant index).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import SimulationError
from .states import density_matrix, num_qubits_of

__all__ = [
    "partial_trace",
    "reduced_density_matrix",
    "partial_trace_keep",
    "permute_qubits",
]


def partial_trace(rho: np.ndarray, trace_out: Sequence[int]) -> np.ndarray:
    """Trace out the given qubits of a density matrix.

    Args:
        rho: density matrix (or state vector) on n qubits.
        trace_out: register positions to remove.

    Returns:
        The reduced density matrix on the remaining qubits, ordered as in the
        original register.
    """
    rho = density_matrix(rho)
    n = num_qubits_of(rho)
    trace_out = sorted(set(int(q) for q in trace_out))
    if any(q < 0 or q >= n for q in trace_out):
        raise SimulationError(f"qubits {trace_out} outside register of {n} qubits")
    keep = [q for q in range(n) if q not in trace_out]
    return partial_trace_keep(rho, keep)


def partial_trace_keep(rho: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Reduced density matrix on ``keep`` (in the order given by ``keep``).

    Unlike :func:`partial_trace`, the output qubit order follows the order of
    the ``keep`` argument, which lets callers obtain e.g. the reduced state on
    ``(control, target)`` of a CNOT regardless of their register positions.

    Accepts a stack ``(..., 2**n, 2**n)`` of density matrices and reduces each
    one; the per-element contraction is independent of the batch composition,
    so reducing a stack is bit-identical to reducing each matrix on its own.
    A single matrix (or state vector) returns a single reduced matrix, exactly
    as before.
    """
    rho = np.asarray(rho)
    if rho.ndim > 2:
        rho = np.asarray(rho, dtype=np.complex128)
        if rho.shape[-1] != rho.shape[-2]:
            raise SimulationError(
                f"expected a stack of square matrices, got shape {rho.shape}"
            )
        dim = rho.shape[-1]
        n = int(round(np.log2(dim))) if dim > 0 else 0
        if dim <= 0 or 2**n != dim:
            raise SimulationError(f"dimension {dim} is not a power of two")
    else:
        rho = density_matrix(rho)
        n = num_qubits_of(rho)
    batch = rho.shape[:-2]
    nb = len(batch)
    keep = [int(q) for q in keep]
    if len(set(keep)) != len(keep):
        raise SimulationError(f"duplicate qubits in {keep}")
    if any(q < 0 or q >= n for q in keep):
        raise SimulationError(f"qubits {keep} outside register of {n} qubits")

    traced = [q for q in range(n) if q not in keep]
    tensor = rho.reshape(batch + (2,) * (2 * n))
    # Row axes are 0..n-1, column axes are n..2n-1 (after the batch axes).
    # Move kept row axes first (in keep order), then kept column axes, then
    # pair up the traced axes and contract.
    perm = list(range(nb)) + [
        nb + axis
        for axis in keep + [n + q for q in keep] + traced + [n + q for q in traced]
    ]
    tensor = tensor.transpose(perm)
    k = len(keep)
    t = len(traced)
    tensor = tensor.reshape(batch + (2**k, 2**k, 2**t, 2**t))
    return np.trace(tensor, axis1=-2, axis2=-1)


def reduced_density_matrix(rho: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Local density matrix of ``rho`` on ``qubits`` (alias of keep-order trace)."""
    return partial_trace_keep(rho, qubits)


def permute_qubits(rho: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Relabel the qubits of a density matrix.

    ``permutation[i]`` gives the register position in the *input* state that
    becomes qubit ``i`` of the output.
    """
    rho = density_matrix(rho)
    n = num_qubits_of(rho)
    permutation = [int(p) for p in permutation]
    if sorted(permutation) != list(range(n)):
        raise SimulationError(f"{permutation} is not a permutation of 0..{n - 1}")
    tensor = rho.reshape([2] * (2 * n))
    perm = permutation + [n + p for p in permutation]
    return tensor.transpose(perm).reshape(2**n, 2**n)
