"""The shared JSON codec for complex matrices (nested ``[re, im]`` pairs).

Single source of truth for every serialization surface that ships matrices
(gate unitaries in :mod:`repro.circuits.serialize`, Kraus operators in
:class:`repro.linalg.channels.QuantumChannel`), so malformed-payload handling
cannot drift between them.  :func:`complex_matrix_from_json` raises
:class:`ValueError` on any malformed payload — ragged rows, non-numeric
entries, wrong nesting — and callers wrap it in their domain error type.
"""

from __future__ import annotations

import numpy as np

__all__ = ["complex_matrix_to_json", "complex_matrix_from_json"]


def complex_matrix_to_json(matrix: np.ndarray) -> list:
    """A complex matrix as nested ``[re, im]`` pairs (row-major)."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    return [[[float(entry.real), float(entry.imag)] for entry in row] for row in matrix]


def complex_matrix_from_json(payload: list) -> np.ndarray:
    """Inverse of :func:`complex_matrix_to_json`; raises ValueError when malformed."""
    try:
        matrix = np.array(
            [[complex(entry[0], entry[1]) for entry in row] for row in payload],
            dtype=np.complex128,
        )
    except (TypeError, IndexError, ValueError) as exc:
        raise ValueError(f"malformed matrix payload: {exc}") from exc
    if matrix.ndim != 2:
        raise ValueError(f"matrix payload has {matrix.ndim} dimensions, expected 2")
    return matrix
