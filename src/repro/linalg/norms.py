"""Norms and distances on quantum states and operators (Section 2.3).

The paper uses several related quantities; we keep their conventions explicit:

* ``trace_norm(A)`` is the Schatten-1 norm ``||A||_1`` (sum of singular
  values), taking values in ``[0, 2]`` for differences of density matrices;
* ``trace_distance(rho, sigma) = 0.5 * ||rho - sigma||_1`` in ``[0, 1]``;
* predicate distances δ in the (ρ̂, δ)-diamond norm are *full* trace norms
  ``||rho - rho_hat||_1``, matching Sections 4–6 of the paper;
* ``statistical_distance`` is the total-variation distance between classical
  distributions, used for the "measured error" of Table 3.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

__all__ = [
    "schatten_norm",
    "trace_norm",
    "frobenius_norm",
    "operator_norm",
    "trace_distance",
    "trace_norm_distance",
    "hilbert_schmidt_distance",
    "statistical_distance",
    "distribution_from_counts",
]


def _singular_values(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim == 1:
        matrix = np.outer(matrix, matrix.conj())
    # Hermitian fast path: singular values are absolute eigenvalues.
    if matrix.shape[0] == matrix.shape[1] and np.allclose(
        matrix, matrix.conj().T, atol=1e-12
    ):
        return np.abs(np.linalg.eigvalsh(matrix))
    return np.linalg.svd(matrix, compute_uv=False)


def schatten_norm(matrix: np.ndarray, p: float) -> float:
    """Schatten-p norm ``(sum_i sigma_i**p)**(1/p)`` of a matrix.

    ``p = inf`` gives the operator norm, ``p = 1`` the trace norm and
    ``p = 2`` the Frobenius norm.
    """
    sigma = _singular_values(matrix)
    if np.isinf(p):
        return float(sigma.max(initial=0.0))
    if p <= 0:
        raise ValueError("Schatten norm requires p > 0")
    return float(np.sum(sigma**p) ** (1.0 / p))


def trace_norm(matrix: np.ndarray) -> float:
    """Trace norm ``||A||_1`` (Schatten-1)."""
    return schatten_norm(matrix, 1)


def frobenius_norm(matrix: np.ndarray) -> float:
    """Frobenius norm ``||A||_F`` (Schatten-2)."""
    return float(np.linalg.norm(np.asarray(matrix), ord="fro"))


def operator_norm(matrix: np.ndarray) -> float:
    """Operator (spectral) norm ``||A||_inf``."""
    return schatten_norm(matrix, np.inf)


def trace_norm_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Full trace-norm distance ``||rho - sigma||_1`` in ``[0, 2]``.

    This is the quantity the paper's predicates bound (``delta``).
    """
    from .states import density_matrix

    return trace_norm(density_matrix(rho) - density_matrix(sigma))


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Trace distance ``0.5 * ||rho - sigma||_1`` in ``[0, 1]``."""
    return 0.5 * trace_norm_distance(rho, sigma)


def hilbert_schmidt_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Frobenius distance between two states."""
    from .states import density_matrix

    return frobenius_norm(density_matrix(rho) - density_matrix(sigma))


def distribution_from_counts(counts: Mapping[str, int]) -> dict[str, float]:
    """Normalise a counts dictionary (bitstring -> hits) into probabilities."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts must contain at least one sample")
    return {key: value / total for key, value in counts.items()}


def statistical_distance(
    p: Mapping[str, float] | np.ndarray, q: Mapping[str, float] | np.ndarray
) -> float:
    """Total-variation distance ``0.5 * sum_x |p(x) - q(x)|``.

    Accepts either dense probability vectors or dictionaries keyed by
    bitstrings; missing keys are treated as probability zero.  This is the
    "measured error" quantity of Table 3 (maximum statistical distance over
    measurements is the trace distance, so the Gleipnir bound must dominate
    this value).
    """
    if isinstance(p, Mapping) or isinstance(q, Mapping):
        p_map = dict(p) if isinstance(p, Mapping) else {str(i): v for i, v in enumerate(p)}
        q_map = dict(q) if isinstance(q, Mapping) else {str(i): v for i, v in enumerate(q)}
        keys = set(p_map) | set(q_map)
        return 0.5 * sum(abs(p_map.get(k, 0.0) - q_map.get(k, 0.0)) for k in keys)
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ValueError("probability vectors must have the same shape")
    return 0.5 * float(np.abs(p_arr - q_arr).sum())
