"""Operator-level utilities: Pauli matrices, gate matrices, and embeddings.

This module contains the raw matrices (Figure 1 of the paper) together with
the machinery to embed a k-qubit operator into an n-qubit register (the
``U ⊗ I`` extension described in Section 2.1) and to form controlled and
tensor-product operators.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import reduce

import numpy as np

from ..errors import GateError

__all__ = [
    "I2",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "S_GATE",
    "SDG_GATE",
    "T_GATE",
    "TDG_GATE",
    "CNOT",
    "CZ",
    "SWAP",
    "pauli_matrix",
    "pauli_string_matrix",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "rzz_matrix",
    "phase_matrix",
    "u3_matrix",
    "controlled",
    "kron_all",
    "embed_operator",
    "expand_to_adjacent",
    "is_unitary",
    "is_hermitian",
    "random_unitary",
    "commutator",
    "anticommutator",
    "operator_from_function",
]

I2 = np.eye(2, dtype=np.complex128)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2.0)
S_GATE = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
SDG_GATE = S_GATE.conj().T
T_GATE = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)
TDG_GATE = T_GATE.conj().T
CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)

_PAULIS = {"I": I2, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


def pauli_matrix(label: str) -> np.ndarray:
    """Single-qubit Pauli matrix for label ``I``, ``X``, ``Y`` or ``Z``."""
    try:
        return _PAULIS[label.upper()]
    except KeyError as exc:
        raise GateError(f"unknown Pauli label {label!r}") from exc


def pauli_string_matrix(labels: str) -> np.ndarray:
    """Tensor product of single-qubit Paulis, e.g. ``"XZI"`` -> X ⊗ Z ⊗ I."""
    if not labels:
        raise GateError("Pauli string must be non-empty")
    return kron_all([pauli_matrix(c) for c in labels])


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation ``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation ``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation ``exp(-i theta Z / 2)``."""
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=np.complex128)


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit Ising interaction ``exp(-i theta Z⊗Z / 2)``."""
    phase = np.exp(-1j * theta / 2)
    return np.diag([phase, np.conj(phase), np.conj(phase), phase]).astype(np.complex128)


def phase_matrix(phi: float) -> np.ndarray:
    """Single-qubit phase gate ``diag(1, exp(i phi))``."""
    return np.array([[1, 0], [0, np.exp(1j * phi)]], dtype=np.complex128)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary in the usual (theta, phi, lambda) form."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Controlled version of a unitary (control on the first qubit)."""
    unitary = np.asarray(unitary, dtype=np.complex128)
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=np.complex128)
    out[dim:, dim:] = unitary
    return out


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    if not matrices:
        raise GateError("kron_all requires at least one matrix")
    return reduce(np.kron, [np.asarray(m, dtype=np.complex128) for m in matrices])


def embed_operator(
    operator: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit operator acting on ``qubits`` into an n-qubit register.

    This is the extension ``U ⊗ I`` described in Section 2.1, generalised to
    an arbitrary (possibly non-contiguous, possibly permuted) list of target
    qubits.  Qubit 0 is the most significant index of the register.

    Args:
        operator: a ``2**k x 2**k`` matrix.
        qubits: the k register positions the operator acts on, in the order of
            the operator's own tensor factors.
        num_qubits: total register size n.

    Returns:
        The ``2**n x 2**n`` embedded operator.
    """
    operator = np.asarray(operator, dtype=np.complex128)
    k = len(qubits)
    if operator.shape != (2**k, 2**k):
        raise GateError(
            f"operator of shape {operator.shape} does not act on {k} qubits"
        )
    if len(set(qubits)) != k:
        raise GateError(f"duplicate target qubits in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise GateError(f"qubits {qubits} outside register of size {num_qubits}")

    # Reshape the operator into a rank-2k tensor and contract into an identity
    # scaffold via tensordot + transpose.  Axis order: row indices then column
    # indices, each ordered like `qubits`.
    full = np.eye(2**num_qubits, dtype=np.complex128)
    full = full.reshape([2] * (2 * num_qubits))
    op_tensor = operator.reshape([2] * (2 * k))

    # Contract the operator's column indices with the row axes of the
    # identity corresponding to the target qubits.
    row_axes = list(qubits)
    full = np.tensordot(op_tensor, full, axes=(list(range(k, 2 * k)), row_axes))
    # tensordot puts the operator's row indices first; move them back to the
    # positions of the target qubits.
    remaining = [ax for ax in range(num_qubits) if ax not in qubits]
    current_order = list(qubits) + remaining + list(range(num_qubits, 2 * num_qubits))
    inverse = np.argsort(
        [current_order.index(ax) for ax in range(2 * num_qubits)]
    )
    # Build permutation mapping new tensor axes to canonical order.
    perm = [current_order.index(ax) for ax in range(2 * num_qubits)]
    del inverse
    full = full.transpose(perm)
    return full.reshape(2**num_qubits, 2**num_qubits)


def expand_to_adjacent(operator: np.ndarray, position: int, num_qubits: int) -> np.ndarray:
    """Embed an operator acting on qubits ``position..position+k-1``.

    A fast path of :func:`embed_operator` for contiguous targets, implemented
    with plain Kronecker products.
    """
    operator = np.asarray(operator, dtype=np.complex128)
    k = int(round(np.log2(operator.shape[0])))
    left = np.eye(2**position, dtype=np.complex128)
    right = np.eye(2 ** (num_qubits - position - k), dtype=np.complex128)
    return np.kron(np.kron(left, operator), right)


def is_unitary(matrix: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Whether a matrix is unitary within tolerance."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Whether a matrix is Hermitian within tolerance."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def random_unitary(dim: int, *, rng: np.random.Generator | None = None) -> np.ndarray:
    """A Haar-random unitary of the given dimension (QR of a Ginibre matrix)."""
    rng = rng or np.random.default_rng()
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def commutator(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix commutator ``[A, B] = AB - BA``."""
    return a @ b - b @ a


def anticommutator(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix anticommutator ``{A, B} = AB + BA``."""
    return a @ b + b @ a


def operator_from_function(num_qubits: int, fn) -> np.ndarray:
    """Diagonal operator whose entries are ``fn(bitstring)`` per basis state.

    Useful for building classical cost Hamiltonians (e.g. max-cut objectives)
    when validating QAOA circuits in tests.
    """
    dim = 2**num_qubits
    diag = np.zeros(dim, dtype=np.complex128)
    for index in range(dim):
        bits = [(index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        diag[index] = fn(bits)
    return np.diag(diag)
