"""Built-in channel metrics: diamond norm, trace norm, process fidelity.

Each metric compares two arbitrary same-arity :class:`QuantumChannel`\\ s and
reports its certification tier honestly:

* :class:`DiamondNormMetric` — the comparative diamond distance
  ``0.5 ||A - B||_diamond`` through the Watrous SDP.  It calls
  :func:`~repro.sdp.diamond.constrained_diamond_norm` on the Choi difference
  — exactly the arithmetic of the legacy
  :func:`~repro.sdp.diamond.diamond_distance` path, so registry routing is
  bit-identical to a direct call, and it inherits the batched kernel
  templates, solve classes, and fusion windows for free.  Tier: *certified*
  (dual certificate attached).
* :class:`TraceNormMetric` — ``0.5 ||J_A - J_B||_1 / d`` on normalised Choi
  matrices; a closed-form lower bound on the diamond distance.  Tier:
  *exact* (linear algebra, no solver, nothing to certify).
* :class:`ProcessFidelityMetric` — ``sqrt(1 - F)`` with ``F`` the Uhlmann
  fidelity between the normalised Choi states (for unitary-vs-channel
  comparisons this is the entanglement infidelity root).  Tier: *heuristic*
  — a standard distance proxy without a certificate.

All three satisfy the metric axioms the property tests enforce:
non-negativity, symmetry (up to solver determinism — the SDP is deterministic
here, and trace/fidelity are algebraically symmetric), and exact zero on
identical channels (the SDP path short-circuits a zero Choi difference to the
exact-zero bound).
"""

from __future__ import annotations

import numpy as np

from ..config import SDPConfig
from ..linalg.channels import QuantumChannel
from ..linalg.norms import trace_norm
from ..sdp.diamond import constrained_diamond_norm
from .base import (
    TIER_CERTIFIED,
    TIER_EXACT,
    TIER_HEURISTIC,
    ChannelMetric,
    MetricValue,
    register_metric,
)

__all__ = [
    "BoundDriftMetric",
    "DiamondNormMetric",
    "ProcessFidelityMetric",
    "TraceNormMetric",
]


@register_metric
class DiamondNormMetric(ChannelMetric):
    """Certified comparative diamond distance via the Watrous SDP."""

    name = "diamond_norm"
    tier = TIER_CERTIFIED
    description = (
        "0.5 ||A - B||_diamond via the Watrous SDP; certified upper bound "
        "with an independently re-verifiable dual certificate."
    )

    def compute(
        self,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        config: SDPConfig | None = None,
    ) -> MetricValue:
        self.check_arity(channel_a, channel_b)
        # Same expression as sdp.diamond.diamond_distance — bit-identity with
        # the legacy path is a tested invariant, not a coincidence.
        choi = channel_a.choi() - channel_b.choi()
        bound = constrained_diamond_norm(choi, config=config)
        return MetricValue(
            metric=self.name,
            value=float(bound.value),
            tier=self.tier,
            method=bound.method,
            bound=bound,
            details={
                "iterations": int(bound.iterations),
                "converged": bool(bound.converged),
                "primal_estimate": float(bound.primal_estimate),
            },
        )


@register_metric
class TraceNormMetric(ChannelMetric):
    """Exact trace-norm distance between normalised Choi matrices."""

    name = "trace_norm"
    tier = TIER_EXACT
    description = (
        "0.5 ||J_A - J_B||_1 on normalised Choi matrices; exact closed form, "
        "a lower bound on the diamond distance."
    )

    def compute(
        self,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        config: SDPConfig | None = None,
    ) -> MetricValue:
        self.check_arity(channel_a, channel_b)
        dim = channel_a.dim_in
        value = 0.5 * trace_norm(channel_a.choi() - channel_b.choi()) / dim
        return MetricValue(
            metric=self.name,
            value=float(value),
            tier=self.tier,
            method="schatten-1",
            details={"dim": int(dim)},
        )


@register_metric
class ProcessFidelityMetric(ChannelMetric):
    """Heuristic infidelity-derived distance ``sqrt(1 - F(J_A/d, J_B/d))``."""

    name = "process_fidelity"
    tier = TIER_HEURISTIC
    description = (
        "sqrt(1 - F) with F the Uhlmann fidelity of normalised Choi states; "
        "heuristic distance proxy, no certificate."
    )

    def compute(
        self,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        config: SDPConfig | None = None,
    ) -> MetricValue:
        self.check_arity(channel_a, channel_b)
        dim = channel_a.dim_in
        rho = np.asarray(channel_a.choi(), dtype=complex) / dim
        sigma = np.asarray(channel_b.choi(), dtype=complex) / dim
        fidelity = _uhlmann_fidelity(rho, sigma)
        value = float(np.sqrt(max(0.0, 1.0 - fidelity)))
        return MetricValue(
            metric=self.name,
            value=value,
            tier=self.tier,
            method="uhlmann",
            details={"fidelity": fidelity, "dim": int(dim)},
        )


@register_metric
class BoundDriftMetric(ChannelMetric):
    """Program-level noise-model A/B drift (engine-executed, not pairwise).

    Registered so capability discovery and job validation know the name; the
    actual computation lives in :mod:`repro.engine.comparisons`, which runs
    the full certified analysis under each noise model and reports
    ``|bound_a - bound_b|``.  The drift itself is heuristic — each side is a
    certified upper bound, but a difference of upper bounds does not bound
    the true drift — so the tier says so, while both dual certificate sets
    are still harvested into the outcome store.
    """

    name = "bound_drift"
    tier = TIER_HEURISTIC
    kind = "program"
    description = (
        "|bound_A - bound_B| of the certified program error bound under two "
        "noise models; both sides individually certified."
    )

    def compute(
        self,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        config: SDPConfig | None = None,
    ) -> MetricValue:
        from ..errors import MetricError

        raise MetricError(
            "bound_drift diffs two noise models over a program; submit it as a "
            "noise-model A/B ComparisonJob, not a channel pair"
        )


def _uhlmann_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """``F(rho, sigma) = ||sqrt(rho) sqrt(sigma)||_1^2``, clipped to [0, 1].

    Computed symmetrically as ``(sum_i sqrt(eig_i(sqrt(rho) sigma sqrt(rho))))^2``
    so ``F(a, b) == F(b, a)`` holds to rounding; identical inputs give exactly
    1 because ``sqrt(rho) rho sqrt(rho)`` has eigenvalue sums equal to
    ``tr(rho) = 1``.
    """
    if np.array_equal(rho, sigma):
        return 1.0
    sqrt_rho = _psd_sqrt(rho)
    inner = sqrt_rho @ sigma @ sqrt_rho
    eigenvalues = np.linalg.eigvalsh((inner + inner.conj().T) / 2.0)
    root_sum = float(np.sqrt(np.clip(eigenvalues, 0.0, None)).sum())
    return float(min(1.0, root_sum * root_sum))


def _psd_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a PSD matrix (eigenvalues clipped at zero)."""
    eigenvalues, eigenvectors = np.linalg.eigh((matrix + matrix.conj().T) / 2.0)
    roots = np.sqrt(np.clip(eigenvalues, 0.0, None))
    return (eigenvectors * roots) @ eigenvectors.conj().T
