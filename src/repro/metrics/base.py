"""Channel-metric protocols and the process-wide metric registry.

The serving stack — content-addressed jobs, dedupe, the whole-outcome cache,
sharded replicas — is metric-agnostic plumbing; this module supplies the
vocabulary that lets it carry more than one quantity.  The shape follows
scikit-fda's ``misc.metrics`` package: small protocol classes
(:class:`ChannelNorm` / :class:`ChannelMetric`) plus a registry with
decorator registration and string lookup, so a metric named in a job payload
resolves to the same object everywhere (engine workers, the ``/v1`` service,
the experiments CLI).

Every computed value is a :class:`MetricValue` that states its
**certification tier** explicitly:

``certified``
    the value is an upper bound established by an independently re-verifiable
    dual certificate (the diamond-norm SDP path);
``exact``
    the value is computed by a closed-form/linear-algebra formula with no
    solver in the loop (trace-norm distance);
``heuristic``
    the value is a principled estimate or one-sided bound without a
    certificate (fidelity-derived bounds).

Registration is idempotent-by-name and collision-checked::

    @register_metric
    class MyMetric(ChannelMetric):
        name = "my_metric"
        tier = TIER_HEURISTIC
        ...

    get_metric("my_metric").compute(channel_a, channel_b)
"""

from __future__ import annotations

import abc
import dataclasses
import threading

from ..config import SDPConfig
from ..errors import MetricError
from ..linalg.channels import QuantumChannel

__all__ = [
    "ChannelMetric",
    "ChannelNorm",
    "MetricValue",
    "TIER_CERTIFIED",
    "TIER_EXACT",
    "TIER_HEURISTIC",
    "get_metric",
    "metric_capabilities",
    "register_metric",
    "registered_metrics",
]

TIER_CERTIFIED = "certified"
TIER_EXACT = "exact"
TIER_HEURISTIC = "heuristic"

_TIERS = (TIER_CERTIFIED, TIER_EXACT, TIER_HEURISTIC)


@dataclasses.dataclass(frozen=True)
class MetricValue:
    """One computed metric value with its provenance made explicit.

    Attributes:
        metric: the registry name of the metric that produced the value.
        value: the (non-negative) distance/bound.
        tier: certification tier — ``certified`` / ``exact`` / ``heuristic``.
        certified: True only for ``certified`` values (a convenience mirror
            of ``tier`` so callers need not compare strings).
        method: free-form detail of how the value was obtained (solver mode,
            closed form, ...).
        bound: for SDP-backed metrics, the full
            :class:`~repro.sdp.diamond.DiamondNormBound` carrying the dual
            certificate and Choi matrix — in-process only, never serialized.
        details: small JSON-safe extras (iterations, gaps, fidelity, ...).
    """

    metric: str
    value: float
    tier: str
    method: str = ""
    bound: object | None = dataclasses.field(default=None, compare=False, repr=False)
    details: dict = dataclasses.field(default_factory=dict)

    @property
    def certified(self) -> bool:
        return self.tier == TIER_CERTIFIED

    def to_json_dict(self) -> dict:
        """The wire-safe record (the certificate-bearing ``bound`` stays local)."""
        return {
            "metric": self.metric,
            "value": self.value,
            "tier": self.tier,
            "certified": self.certified,
            "method": self.method,
            "details": dict(self.details),
        }


class ChannelNorm(abc.ABC):
    """A norm-like functional of one Hermitian-preserving difference map.

    Implementations measure a single channel-shaped object (typically the
    difference ``A - B`` via its Choi matrix).  Every :class:`ChannelMetric`
    below is a norm applied to a difference, but the split keeps single-map
    callers (the analyzer's per-gate path) honest about what they compute.
    """

    #: Registry name (stable, lowercase snake_case — part of job payloads).
    name: str = "abstract"
    #: Default certification tier of values this norm produces.
    tier: str = TIER_HEURISTIC

    @abc.abstractmethod
    def of_choi(self, choi, *, config: SDPConfig | None = None) -> MetricValue:
        """The norm of the map whose (unnormalised) Choi matrix is ``choi``."""


class ChannelMetric(abc.ABC):
    """A symmetric, non-negative distance between two quantum channels.

    The contract the property tests enforce over the program library:
    ``compute(a, a).value == 0``, ``compute(a, b).value >= 0``, and
    ``compute(a, b) ≈ compute(b, a)``.  Implementations must also declare
    their certification tier honestly — a ``certified`` metric's
    :class:`MetricValue` carries a re-verifiable dual certificate.
    """

    name: str = "abstract"
    tier: str = TIER_HEURISTIC
    #: ``"channel"`` for pairwise channel metrics; ``"program"`` for metrics
    #: the engine computes over whole analyses (noise-model A/B diffs).
    kind: str = "channel"
    #: One-line human description for capability discovery.
    description: str = ""

    @abc.abstractmethod
    def compute(
        self,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        config: SDPConfig | None = None,
    ) -> MetricValue:
        """The distance between two same-arity channels."""

    def certify(self, value: MetricValue) -> bool:
        """Re-check the evidence behind ``value`` (False when there is none).

        The default implementation verifies the dual certificate of an
        SDP-backed value; tiers without certificates report False so callers
        cannot mistake "nothing to check" for "checked and fine".
        """
        bound = value.bound
        if bound is None or getattr(bound, "certificate", None) is None:
            return False
        if getattr(bound, "choi", None) is None:
            return False
        from ..sdp.certificates import verify_certificate

        return verify_certificate(bound.certificate, bound.choi, tolerance=1e-6)

    @staticmethod
    def check_arity(channel_a: QuantumChannel, channel_b: QuantumChannel) -> None:
        """Reject mismatched channel pairs with a structured error."""
        if (
            channel_a.dim_in != channel_b.dim_in
            or channel_a.dim_out != channel_b.dim_out
        ):
            raise MetricError(
                "cannot compare channels of different arities: "
                f"({channel_a.dim_out}x{channel_a.dim_in}) vs "
                f"({channel_b.dim_out}x{channel_b.dim_in})"
            )

    def to_json_dict(self) -> dict:
        """The capability-discovery record of this metric."""
        return {
            "name": self.name,
            "tier": self.tier,
            "kind": self.kind,
            "description": self.description,
        }


# ---------------------------------------------------------------------------
# The process-wide registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ChannelMetric] = {}
_REGISTRY_LOCK = threading.Lock()


def register_metric(cls_or_instance):
    """Register a metric (class decorator or explicit instance call).

    Classes are instantiated once; the singleton instance is what string
    lookup returns.  Registering a different implementation under an already
    taken name is an error (re-registering the same class is idempotent, so
    module reloads in long-lived test processes stay harmless).
    """
    instance = cls_or_instance() if isinstance(cls_or_instance, type) else cls_or_instance
    name = instance.name
    if not name or name == "abstract":
        raise MetricError(f"metric {instance!r} needs a concrete registry name")
    if instance.tier not in _TIERS:
        raise MetricError(
            f"metric {name!r} declares unknown tier {instance.tier!r} "
            f"(one of {', '.join(_TIERS)})"
        )
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and type(existing) is not type(instance):
            raise MetricError(
                f"metric name {name!r} is already registered by "
                f"{type(existing).__name__}"
            )
        _REGISTRY[name] = instance
    return cls_or_instance


def registered_metrics() -> dict[str, ChannelMetric]:
    """A snapshot of the registry (name -> metric instance)."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        return dict(sorted(_REGISTRY.items()))


def get_metric(name: str) -> ChannelMetric:
    """String lookup; unknown names raise a :class:`MetricError` listing
    what *is* registered (mapped to a 400 envelope over ``/v1``)."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        metric = _REGISTRY.get(str(name))
        if metric is None:
            known = ", ".join(sorted(_REGISTRY)) or "none"
            raise MetricError(
                f"unknown metric {name!r} (registered: {known})"
            )
        return metric


def metric_capabilities() -> list[dict]:
    """The ``metrics`` stanza of ``GET /v1/capabilities``."""
    return [metric.to_json_dict() for metric in registered_metrics().values()]


def _ensure_builtins() -> None:
    """Import the built-in metrics exactly once (registration side effect).

    Lazy so that ``repro.metrics.base`` can be imported by the concrete
    metric modules without a cycle, while bare ``get_metric("diamond_norm")``
    calls still work without the caller importing anything else.
    """
    from . import channel_metrics  # noqa: F401
