"""Pluggable channel-metric registry.

The public surface of the metrics subsystem: protocol classes, the built-in
metrics, and the process-wide registry.  See :mod:`repro.metrics.base` for
the certification-tier contract and ``docs/metrics.md`` for the walkthrough.
"""

from .base import (
    TIER_CERTIFIED,
    TIER_EXACT,
    TIER_HEURISTIC,
    ChannelMetric,
    ChannelNorm,
    MetricValue,
    get_metric,
    metric_capabilities,
    register_metric,
    registered_metrics,
)
from .channel_metrics import (
    DiamondNormMetric,
    ProcessFidelityMetric,
    TraceNormMetric,
)

__all__ = [
    "ChannelMetric",
    "ChannelNorm",
    "DiamondNormMetric",
    "MetricValue",
    "ProcessFidelityMetric",
    "TIER_CERTIFIED",
    "TIER_EXACT",
    "TIER_HEURISTIC",
    "TraceNormMetric",
    "get_metric",
    "metric_capabilities",
    "register_metric",
    "registered_metrics",
]
