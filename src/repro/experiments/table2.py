"""Experiment harness for Table 2: error bounds on the benchmark suite.

For every benchmark circuit the harness computes

* the Gleipnir bound (MPS-constrained diamond norms chained by the error
  logic) and its runtime,
* the LQR + full-simulation baseline (strongest predicates from exact density
  simulation), which — exactly as in the paper — is only feasible for the
  small-qubit rows and reports a timeout otherwise,
* the worst-case bound from unconstrained diamond norms (``gate count × p``
  under the paper's bit-flip model).

Run at ``scale="full"`` this regenerates the paper's table (same qubit counts,
MPS width 128); at ``scale="reduced"`` it runs a shape-preserving smaller
suite suitable for CI and ``pytest benchmarks/``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..api import AnalysisOutcome, AnalysisSession
from ..circuits.circuit import Circuit
from ..config import AnalysisConfig, DEFAULT_BIT_FLIP_PROBABILITY
from ..core.baselines import lqr_full_simulation_bound, worst_case_bound
from ..errors import ExperimentError
from ..noise.model import NoiseModel
from ..programs.library import BenchmarkSpec, table2_benchmarks
from ._session import resolve_session, stream_batch

__all__ = ["Table2Row", "Table2Result", "run_table2", "run_table2_row"]


@dataclasses.dataclass
class Table2Row:
    """One row of Table 2."""

    benchmark: str
    num_qubits: int
    gate_count: int
    gleipnir_bound: float
    gleipnir_seconds: float
    lqr_bound: float | None
    lqr_seconds: float | None
    lqr_timed_out: bool
    worst_case_bound: float
    mps_width: int
    final_delta: float
    sdp_solves: int
    sdp_cache_hits: int
    mps_walks: int = 0

    @property
    def improvement_over_worst_case(self) -> float:
        """Relative tightening versus the worst-case bound (0.15 = 15 % tighter)."""
        if self.worst_case_bound <= 0:
            return 0.0
        return 1.0 - self.gleipnir_bound / self.worst_case_bound


@dataclasses.dataclass
class Table2Result:
    """All rows plus the configuration that produced them."""

    rows: list[Table2Row]
    scale: str
    mps_width: int
    bit_flip_probability: float

    def row(self, benchmark: str) -> Table2Row:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise ExperimentError(f"no row named {benchmark!r}")

    def as_dicts(self) -> list[dict]:
        return [dataclasses.asdict(row) for row in self.rows]


def _noise_model(bit_flip_probability: float) -> NoiseModel:
    return NoiseModel.uniform_bit_flip(bit_flip_probability)


def _assemble_row(
    spec: BenchmarkSpec,
    circuit: Circuit,
    analysis: AnalysisOutcome,
    noise_model: NoiseModel,
    config: AnalysisConfig,
    *,
    include_lqr: bool,
) -> Table2Row:
    """Combine one facade outcome with the (inline) baselines into a row."""
    if not analysis.ok:
        raise ExperimentError(
            f"analysis of benchmark {spec.name!r} {analysis.status}: {analysis.error}"
        )
    worst = worst_case_bound(circuit, noise_model, config=config)

    lqr_bound = None
    lqr_seconds = None
    lqr_timed_out = False
    if include_lqr:
        lqr = lqr_full_simulation_bound(circuit, noise_model, config=config)
        lqr_bound = lqr.value
        lqr_seconds = lqr.elapsed_seconds
        lqr_timed_out = lqr.timed_out

    return Table2Row(
        benchmark=spec.name,
        num_qubits=circuit.num_qubits,
        gate_count=circuit.gate_count(),
        gleipnir_bound=analysis.bound,
        gleipnir_seconds=analysis.elapsed_seconds,
        lqr_bound=lqr_bound,
        lqr_seconds=lqr_seconds,
        lqr_timed_out=lqr_timed_out,
        worst_case_bound=worst.value if worst.value is not None else float("nan"),
        mps_width=config.mps_width,
        final_delta=analysis.final_delta,
        sdp_solves=analysis.sdp_solves,
        sdp_cache_hits=analysis.sdp_cache_hits,
        mps_walks=analysis.mps_walks,
    )


def run_table2_row(
    spec: BenchmarkSpec,
    *,
    mps_width: int = 128,
    bit_flip_probability: float = DEFAULT_BIT_FLIP_PROBABILITY,
    config: AnalysisConfig | None = None,
    include_lqr: bool = True,
    session: AnalysisSession | None = None,
) -> Table2Row:
    """Run one benchmark through Gleipnir (via ``repro.api``) and the baselines."""
    circuit = spec.build()
    noise_model = _noise_model(bit_flip_probability)
    config = (config or AnalysisConfig()).replace(mps_width=mps_width)
    with resolve_session(session, what="run_table2_row") as active:
        outcome = active.analyze(circuit, noise_model, config=config, name=spec.name)
    return _assemble_row(
        spec, circuit, outcome, noise_model, config, include_lqr=include_lqr
    )


def run_table2(
    *,
    scale: str = "reduced",
    mps_width: int | None = None,
    bit_flip_probability: float = DEFAULT_BIT_FLIP_PROBABILITY,
    benchmarks: Sequence[str] | None = None,
    config: AnalysisConfig | None = None,
    include_lqr: bool = True,
    session: AnalysisSession | None = None,
    workers: int = 1,
    resume: bool = False,
    store_path: str | None = None,
    cache_dir: str | None = None,
    scheduler: bool = True,
    progress=None,
) -> Table2Result:
    """Regenerate Table 2 at the requested scale.

    The Gleipnir analyses run through the :mod:`repro.api` facade as one
    batch of content-addressed jobs; the baselines (worst case, LQR) stay
    inline because they are either trivial or deliberately report timeouts.

    Args:
        scale: ``"full"`` for paper-scale circuits, ``"reduced"`` for the CI suite.
        mps_width: MPS bond dimension (defaults: 128 at full scale, 16 reduced).
        bit_flip_probability: the per-gate bit-flip probability of the noise model.
        benchmarks: optional subset of benchmark names to run.
        config: analysis configuration overrides.
        include_lqr: also run the LQR + full-simulation baseline.
        session: the :class:`~repro.api.AnalysisSession` to run through (local
            or remote); an ephemeral inline session is created when omitted.
        workers / resume / store_path / cache_dir: **deprecated** — legacy
            engine kwargs, kept as a shim that builds the equivalent session
            (with a :class:`DeprecationWarning`); use ``session=`` instead.
        scheduler: run the single-pass scheduled pipeline (default); False
            forces the sequential per-gate path, mainly for comparisons.
        progress: a callable receiving one line per finished job as results
            land (completion order); None keeps the silent batch behaviour.
    """
    if mps_width is None:
        mps_width = 128 if scale == "full" else 16
    specs = table2_benchmarks(scale)
    if benchmarks is not None:
        wanted = set(benchmarks)
        specs = [spec for spec in specs if spec.name in wanted]
        missing = wanted - {spec.name for spec in specs}
        if missing:
            raise ExperimentError(f"unknown benchmarks requested: {sorted(missing)}")

    noise_model = _noise_model(bit_flip_probability)
    run_config = (config or AnalysisConfig()).replace(
        mps_width=mps_width, scheduler=scheduler
    )
    circuits = [spec.build() for spec in specs]
    with resolve_session(
        session,
        workers=workers,
        resume=resume,
        store_path=store_path,
        cache_dir=cache_dir,
        what="run_table2",
    ) as active:
        jobs = [
            active.job(circuit, noise_model, config=run_config, name=spec.name)
            for spec, circuit in zip(specs, circuits)
        ]
        outcomes = stream_batch(active, jobs, progress)
    rows = [
        _assemble_row(
            spec, circuit, analysis, noise_model, run_config, include_lqr=include_lqr
        )
        for spec, circuit, analysis in zip(specs, circuits, outcomes)
    ]
    return Table2Result(
        rows=rows,
        scale=scale,
        mps_width=mps_width,
        bit_flip_probability=bit_flip_probability,
    )
