"""Experiment harness for Table 3: qubit-mapping evaluation on a NISQ device.

For each candidate mapping of the GHZ-3 and GHZ-5 circuits onto the
Boeblingen-like device, the harness computes

* the Gleipnir bound of the mapped (placed + routed) circuit under the
  calibration-driven device noise model, with readout errors modelled as
  bit-flip channels on the measured qubits; and
* the "measured" error from the hardware emulator (noisy density-matrix
  simulation + readout error + finite shots), the offline substitute for the
  paper's runs on the real IBM Boeblingen machine.

The two properties the paper demonstrates — the bound dominates the measured
error, and the *ranking* of mappings by bound matches the ranking by measured
error — are exactly what the benchmark and test suites assert.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..api import AnalysisSession
from ..circuits.circuit import Circuit
from ..circuits.gates import identity as identity_gate
from ..config import AnalysisConfig
from ..devices.boeblingen import boeblingen_calibration
from ..devices.coupling import CouplingMap
from ..devices.emulator import HardwareEmulator
from ..devices.mapping import MappedCircuit, map_circuit
from ..noise.calibration import CalibrationData
from ..noise.channels import bit_flip
from ..noise.model import NoiseModel
from ..programs.ghz import ghz_circuit
from ._session import resolve_session

__all__ = [
    "Table3Row",
    "Table3Result",
    "default_mapping_experiments",
    "run_table3",
    "analyze_mapped_circuit",
]


@dataclasses.dataclass
class Table3Row:
    """One (circuit, mapping) row of Table 3."""

    circuit: str
    mapping: tuple[int, ...]
    mapping_label: str
    gleipnir_bound: float
    measured_error: float
    physical_gate_count: int

    @property
    def bound_dominates(self) -> bool:
        return self.gleipnir_bound >= self.measured_error


@dataclasses.dataclass
class Table3Result:
    """All rows plus ranking consistency checks."""

    rows: list[Table3Row]
    shots: int | None
    calibration_name: str

    def rows_for(self, circuit: str) -> list[Table3Row]:
        return [row for row in self.rows if row.circuit == circuit]

    def ranking_consistent(self, circuit: str) -> bool:
        """Whether bound-ranking equals measured-error-ranking for a circuit."""
        rows = self.rows_for(circuit)
        by_bound = sorted(rows, key=lambda r: r.gleipnir_bound)
        by_measured = sorted(rows, key=lambda r: r.measured_error)
        return [r.mapping for r in by_bound] == [r.mapping for r in by_measured]

    def all_bounds_dominate(self) -> bool:
        return all(row.bound_dominates for row in self.rows)


def default_mapping_experiments() -> list[tuple[str, Circuit, list[tuple[int, ...]]]]:
    """The (circuit, candidate mappings) pairs evaluated in the paper.

    GHZ-3 is the standard ladder placed on three windows of the device's first
    row.  GHZ-5 uses the "broom" preparation of Figure 16 (the root qubit fans
    out in two directions), for which the paper's ``2-1-0-3-4`` placement is
    routing-free while the natural ``0-1-2-3-4`` placement needs an extra swap
    — which is exactly why the reversed-head mapping wins.
    """
    ghz3 = ghz_circuit(3)
    ghz5 = Circuit(5, name="ghz_5_broom")
    ghz5.h(0).cx(0, 1).cx(1, 2).cx(0, 3).cx(3, 4)
    return [
        ("GHZ-3", ghz3, [(0, 1, 2), (1, 2, 3), (2, 3, 4)]),
        ("GHZ-5", ghz5, [(0, 1, 2, 3, 4), (2, 1, 0, 3, 4)]),
    ]


def _with_readout_noise(
    mapped: MappedCircuit, calibration: CalibrationData, noise_model: NoiseModel
) -> Circuit:
    """Append readout noise as bit-flip channels on the measured qubits.

    A symmetric assignment error of probability r before a perfect measurement
    is exactly a bit-flip channel of probability r, so modelling readout this
    way keeps the Gleipnir bound comparable to the emulator's measured error.
    """
    circuit = mapped.physical_circuit.copy(name=f"{mapped.physical_circuit.name}_readout")
    for physical in mapped.mapping[: mapped.logical_circuit.num_qubits]:
        readout = calibration.readout_error.get(physical, 0.0)
        circuit.append(identity_gate(), physical)
        if readout > 0:
            noise_model.add_rule("id", (physical,), bit_flip(readout))
    return circuit


def _mapped_job_inputs(
    mapped: MappedCircuit,
    calibration: CalibrationData,
    *,
    noise_kind: str = "depolarizing",
    include_readout: bool = True,
) -> tuple[Circuit, NoiseModel]:
    """The (circuit, calibration noise model) pair one mapping analysis needs."""
    from ..devices.mapping import mapping_noise_model

    noise_model = mapping_noise_model(calibration, kind=noise_kind)
    circuit = mapped.physical_circuit
    if include_readout:
        circuit = _with_readout_noise(mapped, calibration, noise_model)
    return circuit, noise_model


def analyze_mapped_circuit(
    mapped: MappedCircuit,
    calibration: CalibrationData,
    *,
    config: AnalysisConfig | None = None,
    noise_kind: str = "depolarizing",
    include_readout: bool = True,
    session: AnalysisSession | None = None,
) -> float:
    """Gleipnir bound of a mapped circuit under the device noise model."""
    circuit, noise_model = _mapped_job_inputs(
        mapped, calibration, noise_kind=noise_kind, include_readout=include_readout
    )
    config = config or AnalysisConfig(mps_width=16)
    with resolve_session(session, what="analyze_mapped_circuit") as active:
        outcome = active.analyze(
            circuit, noise_model, config=config, name=circuit.name
        ).raise_for_status()
    return outcome.bound


def run_table3(
    *,
    shots: int | None = 8192,
    calibration: CalibrationData | None = None,
    coupling: CouplingMap | None = None,
    experiments: Sequence[tuple[str, Circuit, list[tuple[int, ...]]]] | None = None,
    config: AnalysisConfig | None = None,
    noise_kind: str = "depolarizing",
    seed: int = 7,
    session: AnalysisSession | None = None,
) -> Table3Result:
    """Regenerate Table 3 on the emulated Boeblingen-like device.

    Every (circuit, mapping) bound is one content-addressed job submitted
    through the :mod:`repro.api` facade as a single batch; the emulator's
    "measured" errors stay inline (they are the experiment's ground truth,
    not analyses).
    """
    coupling = coupling or CouplingMap.ibm_boeblingen()
    calibration = calibration or boeblingen_calibration()
    experiments = experiments if experiments is not None else default_mapping_experiments()
    emulator = HardwareEmulator(coupling, calibration, noise_kind=noise_kind, seed=seed)
    run_config = config or AnalysisConfig(mps_width=16)

    cases: list[tuple[str, tuple[int, ...], MappedCircuit]] = []
    with resolve_session(session, what="run_table3") as active:
        jobs = []
        for circuit_name, circuit, mappings in experiments:
            for mapping in mappings:
                mapped = map_circuit(circuit, mapping, coupling)
                job_circuit, noise_model = _mapped_job_inputs(
                    mapped, calibration, noise_kind=noise_kind
                )
                jobs.append(
                    active.job(
                        job_circuit, noise_model, config=run_config, name=job_circuit.name
                    )
                )
                cases.append((circuit_name, tuple(mapping), mapped))
        outcomes = active.analyze_batch(jobs)

    rows: list[Table3Row] = []
    for (circuit_name, mapping, mapped), outcome in zip(cases, outcomes):
        outcome.raise_for_status()
        measured = emulator.measured_error(mapped, shots=shots)
        rows.append(
            Table3Row(
                circuit=circuit_name,
                mapping=mapping,
                mapping_label="-".join(str(q) for q in mapping),
                gleipnir_bound=outcome.bound,
                measured_error=measured,
                physical_gate_count=mapped.physical_circuit.gate_count(),
            )
        )
    return Table3Result(rows=rows, shots=shots, calibration_name=calibration.name)
