"""Shared session plumbing for the experiment harnesses.

Every driver used to accept (and re-plumb) its own ``workers`` / ``resume`` /
``store_path`` / ``cache_dir`` kwargs.  The facade owns that wiring now; the
legacy kwargs survive as deprecation shims that build the equivalent
:class:`~repro.api.AnalysisSession` — bit-identical by construction, and
property-tested so in ``tests/test_api_session.py``.
"""

from __future__ import annotations

import contextlib
import logging
import warnings
from collections.abc import Callable, Sequence

from ..api import AnalysisOutcome, AnalysisSession
from ..errors import ExperimentError

__all__ = ["configure_logging", "resolve_session", "stream_batch"]

LOGGER = logging.getLogger("repro.experiments")


def configure_logging(level: str = "INFO") -> None:
    """Attach a stderr handler to the ``repro`` logger hierarchy.

    Idempotent: repeated calls only adjust the level, so experiment drivers
    composed under ``gleipnir-experiments all`` don't stack handlers and
    double every line.
    """
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, str(level).upper(), logging.INFO))
    if not any(getattr(h, "_repro_cli", False) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        handler._repro_cli = True  # type: ignore[attr-defined]
        root.addHandler(handler)


def stream_batch(
    active: AnalysisSession,
    jobs: Sequence,
    progress: bool | Callable[[str], None] | None = None,
) -> list[AnalysisOutcome]:
    """Run ``jobs`` through ``active``, streaming per-job progress lines.

    With ``progress`` truthy, the batch runs through
    :meth:`~repro.api.AnalysisSession.as_completed` and every finished job
    emits one ``repro.experiments`` log record (INFO level, with the job
    fingerprint attached as ``record.fingerprint``) as its result lands,
    instead of silence until batch end; without it this is a plain
    ``analyze_batch`` call.  Passing a callable still works (it receives the
    formatted line, the pre-logging contract) but new code should rely on
    the logger.  Either way the returned outcomes are aligned with ``jobs``.
    """
    if not progress:
        return active.analyze_batch(jobs)
    jobs = list(jobs)
    outcomes: list[AnalysisOutcome | None] = [None] * len(jobs)
    done = 0
    for index, outcome in active.as_completed(jobs):
        outcomes[index] = outcome
        done += 1
        if outcome.ok:
            detail = f"bound={outcome.bound:.6e} ({outcome.elapsed_seconds:.2f}s)"
        else:
            detail = f"{outcome.status}: {outcome.error or 'no detail'}"
        line = f"[{done}/{len(jobs)}] {outcome.name}: {detail}"
        if callable(progress):
            progress(line)
        else:
            LOGGER.info("%s", line, extra={"fingerprint": outcome.fingerprint})
    return outcomes  # type: ignore[return-value]


@contextlib.contextmanager
def resolve_session(
    session: AnalysisSession | None,
    *,
    workers: int = 1,
    resume: bool = False,
    store_path: str | None = None,
    cache_dir: str | None = None,
    what: str = "this experiment",
):
    """Yield the session an experiment should run through.

    A caller-provided ``session`` is used as-is (and not closed).  Otherwise
    an ephemeral session is built — from the legacy engine kwargs if any were
    set, with a :class:`DeprecationWarning` pointing at ``session=`` — and
    closed when the experiment finishes.
    """
    legacy_used = workers != 1 or resume or store_path is not None or cache_dir is not None
    if session is not None:
        if legacy_used:
            raise ExperimentError(
                "pass either session= or the legacy workers/resume/store_path/"
                "cache_dir kwargs, not both"
            )
        yield session
        return
    if legacy_used:
        warnings.warn(
            f"the workers/resume/store_path/cache_dir kwargs of {what} are "
            "deprecated; pass a repro.api.AnalysisSession via session= instead",
            DeprecationWarning,
            stacklevel=4,
        )
    owned = AnalysisSession(
        workers=workers, store=store_path, cache_dir=cache_dir, resume=resume
    )
    try:
        yield owned
    finally:
        owned.close()
