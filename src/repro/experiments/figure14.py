"""Experiment harness for Figure 14: error bound and runtime versus MPS size.

The paper sweeps the MPS bond dimension w from 1 to 128 on ``Isingmodel45``
and shows that larger widths give (weakly) tighter bounds at the cost of
longer runtimes, with diminishing returns.  The harness reproduces that sweep
on the Ising benchmark (full scale) or on its reduced stand-in.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..api import AnalysisSession
from ..config import AnalysisConfig, DEFAULT_BIT_FLIP_PROBABILITY
from ..errors import ExperimentError
from ..noise.model import NoiseModel
from ..programs.library import benchmark_by_name
from ._session import resolve_session, stream_batch

__all__ = ["Figure14Point", "Figure14Result", "run_figure14", "DEFAULT_WIDTHS"]

#: The MPS sizes swept in the paper (Figure 14).
DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclasses.dataclass
class Figure14Point:
    """One point of the Figure 14 sweep."""

    mps_width: int
    error_bound: float
    runtime_seconds: float
    final_delta: float


@dataclasses.dataclass
class Figure14Result:
    """The whole sweep."""

    benchmark: str
    points: list[Figure14Point]
    scale: str

    def widths(self) -> list[int]:
        return [point.mps_width for point in self.points]

    def bounds(self) -> list[float]:
        return [point.error_bound for point in self.points]

    def runtimes(self) -> list[float]:
        return [point.runtime_seconds for point in self.points]


def run_figure14(
    *,
    scale: str = "reduced",
    benchmark: str = "Isingmodel45",
    widths: Sequence[int] = DEFAULT_WIDTHS,
    bit_flip_probability: float = DEFAULT_BIT_FLIP_PROBABILITY,
    config: AnalysisConfig | None = None,
    session: AnalysisSession | None = None,
    workers: int = 1,
    resume: bool = False,
    store_path: str | None = None,
    cache_dir: str | None = None,
    scheduler: bool = True,
    progress=None,
) -> Figure14Result:
    """Sweep the MPS width on the Ising benchmark and record bound/runtime.

    Each width is one content-addressed :class:`~repro.engine.spec.AnalysisJob`
    (the MPS width is part of the fingerprint), so the sweep shards and
    resumes like any other batch through the :mod:`repro.api` facade.
    ``scheduler=False`` forces the sequential per-gate path instead of the
    single-pass scheduled pipeline.  The ``workers``/``resume``/
    ``store_path``/``cache_dir`` kwargs are **deprecated** shims for
    ``session=``.  ``progress`` receives one line per finished point as
    results land (completion order); None keeps the silent batch behaviour.
    """
    spec = benchmark_by_name(benchmark, scale)
    circuit = spec.build()
    noise_model = NoiseModel.uniform_bit_flip(bit_flip_probability)

    with resolve_session(
        session,
        workers=workers,
        resume=resume,
        store_path=store_path,
        cache_dir=cache_dir,
        what="run_figure14",
    ) as active:
        jobs = [
            active.job(
                circuit,
                noise_model,
                config=(config or AnalysisConfig()).replace(
                    mps_width=int(width), scheduler=scheduler
                ),
                name=f"{spec.name}[w={int(width)}]",
            )
            for width in widths
        ]
        outcomes = stream_batch(active, jobs, progress)

    points: list[Figure14Point] = []
    for width, analysis in zip(widths, outcomes):
        if not analysis.ok:
            raise ExperimentError(
                f"figure-14 point w={width} {analysis.status}: {analysis.error}"
            )
        points.append(
            Figure14Point(
                mps_width=int(width),
                error_bound=analysis.bound,
                runtime_seconds=analysis.elapsed_seconds,
                final_delta=analysis.final_delta,
            )
        )
    return Figure14Result(benchmark=spec.name, points=points, scale=scale)
