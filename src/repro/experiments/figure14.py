"""Experiment harness for Figure 14: error bound and runtime versus MPS size.

The paper sweeps the MPS bond dimension w from 1 to 128 on ``Isingmodel45``
and shows that larger widths give (weakly) tighter bounds at the cost of
longer runtimes, with diminishing returns.  The harness reproduces that sweep
on the Ising benchmark (full scale) or on its reduced stand-in.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

from ..config import AnalysisConfig, DEFAULT_BIT_FLIP_PROBABILITY
from ..core.analyzer import GleipnirAnalyzer
from ..noise.model import NoiseModel
from ..programs.library import benchmark_by_name

__all__ = ["Figure14Point", "Figure14Result", "run_figure14", "DEFAULT_WIDTHS"]

#: The MPS sizes swept in the paper (Figure 14).
DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclasses.dataclass
class Figure14Point:
    """One point of the Figure 14 sweep."""

    mps_width: int
    error_bound: float
    runtime_seconds: float
    final_delta: float


@dataclasses.dataclass
class Figure14Result:
    """The whole sweep."""

    benchmark: str
    points: list[Figure14Point]
    scale: str

    def widths(self) -> list[int]:
        return [point.mps_width for point in self.points]

    def bounds(self) -> list[float]:
        return [point.error_bound for point in self.points]

    def runtimes(self) -> list[float]:
        return [point.runtime_seconds for point in self.points]


def run_figure14(
    *,
    scale: str = "reduced",
    benchmark: str = "Isingmodel45",
    widths: Sequence[int] = DEFAULT_WIDTHS,
    bit_flip_probability: float = DEFAULT_BIT_FLIP_PROBABILITY,
    config: AnalysisConfig | None = None,
) -> Figure14Result:
    """Sweep the MPS width on the Ising benchmark and record bound/runtime."""
    spec = benchmark_by_name(benchmark, scale)
    circuit = spec.build()
    noise_model = NoiseModel.uniform_bit_flip(bit_flip_probability)

    points: list[Figure14Point] = []
    for width in widths:
        run_config = (config or AnalysisConfig()).replace(mps_width=int(width))
        analyzer = GleipnirAnalyzer(noise_model, run_config)
        start = time.perf_counter()
        analysis = analyzer.analyze(circuit, program_name=f"{spec.name}[w={width}]")
        elapsed = time.perf_counter() - start
        points.append(
            Figure14Point(
                mps_width=int(width),
                error_bound=analysis.error_bound,
                runtime_seconds=elapsed,
                final_delta=analysis.final_delta,
            )
        )
    return Figure14Result(benchmark=spec.name, points=points, scale=scale)
