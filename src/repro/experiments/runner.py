"""Command-line entry point: regenerate the paper's tables and figures.

Installed as ``gleipnir-experiments`` (see pyproject.toml)::

    gleipnir-experiments table2 --scale reduced
    gleipnir-experiments table2 --scale reduced --workers 4 --store t2.jsonl --resume
    gleipnir-experiments figure14 --scale reduced --widths 1 2 4 8 16
    gleipnir-experiments table3 --shots 8192
    gleipnir-experiments compare --metric bound_drift --noise-a 1e-3 --noise-b 2e-3
    gleipnir-experiments all --scale reduced --output results.md

``--scale full`` reproduces the paper-scale configuration (10–100 qubits,
MPS width 128); expect runtimes of minutes per row, as in the paper.

Every command drives one :class:`repro.api.AnalysisSession` (the shared
front door): ``--workers N`` shards the Gleipnir analyses across an engine
process pool, ``--store`` + ``--resume`` make a killed sweep re-run only its
missing jobs, ``--cache-dir`` shares one on-disk bound cache between workers
and runs, and ``--remote URL`` submits everything to a running
``gleipnir-serve`` instead of analysing locally.
"""

from __future__ import annotations

import argparse
import sys

from ..api import add_session_arguments, session_from_args, trace_to_file
from ._session import configure_logging
from .figure14 import DEFAULT_WIDTHS, run_figure14
from .report import render_figure14, render_table2, render_table3
from .table2 import run_table2
from .table3 import run_table3

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gleipnir-experiments",
        description="Regenerate the Gleipnir paper's evaluation tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", choices=["reduced", "full"], default="reduced")
        sub.add_argument("--markdown", action="store_true", help="emit Markdown tables")
        sub.add_argument("--output", type=str, default=None, help="write the report to a file")
        add_session_arguments(sub)
        sub.add_argument(
            "--no-scheduler",
            action="store_true",
            help="disable the single-pass scheduled pipeline (sequential per-gate path)",
        )
        sub.add_argument(
            "--progress",
            action="store_true",
            help="log one line per job as results land (see --log-level)",
        )

    table2 = subparsers.add_parser("table2", help="error bounds on the benchmark suite")
    add_common(table2)
    table2.add_argument("--mps-width", type=int, default=None)
    table2.add_argument("--benchmarks", nargs="*", default=None)
    table2.add_argument("--no-lqr", action="store_true", help="skip the LQR baseline")

    figure14 = subparsers.add_parser("figure14", help="bound/runtime vs MPS size")
    add_common(figure14)
    figure14.add_argument("--widths", nargs="*", type=int, default=list(DEFAULT_WIDTHS))
    figure14.add_argument("--benchmark", type=str, default="Isingmodel45")

    table3 = subparsers.add_parser("table3", help="qubit-mapping study on the emulated device")
    add_common(table3)
    table3.add_argument("--shots", type=int, default=8192)

    compare = subparsers.add_parser(
        "compare",
        help="comparative metrics: channel pairs or noise-model A/B diffs",
    )
    add_common(compare)
    compare.add_argument(
        "--metric",
        type=str,
        default="bound_drift",
        help="registered metric name (see `GET /v1/capabilities`): a channel "
        "metric (diamond_norm, trace_norm, process_fidelity) compares the two "
        "bit-flip channels directly; a program metric (bound_drift) diffs the "
        "two noise models over the benchmark circuit",
    )
    compare.add_argument(
        "--benchmark",
        type=str,
        default="QAOA_line_10",
        help="benchmark circuit for program-level metrics",
    )
    compare.add_argument("--mps-width", type=int, default=None)
    compare.add_argument(
        "--noise-a",
        type=float,
        default=1e-3,
        help="bit-flip probability of side A",
    )
    compare.add_argument(
        "--noise-b",
        type=float,
        default=2e-3,
        help="bit-flip probability of side B",
    )

    everything = subparsers.add_parser("all", help="run every experiment")
    add_common(everything)
    everything.add_argument("--shots", type=int, default=8192)
    return parser


def run_compare(args, session) -> str:
    """The ``compare`` subcommand: one comparison through the session facade.

    Channel metrics compare ``bit_flip(--noise-a)`` against
    ``bit_flip(--noise-b)`` directly; program metrics run the noise-model A/B
    diff over ``--benchmark``.  Works against ``--remote`` unchanged — the
    comparison job travels the same ``/v1`` wire as analyses.
    """
    from ..config import AnalysisConfig
    from ..metrics import get_metric
    from ..noise.channels import bit_flip
    from ..noise.model import NoiseModel

    metric = get_metric(args.metric)
    if metric.kind == "channel":
        outcome = session.compare(
            bit_flip(args.noise_a), bit_flip(args.noise_b), metric=args.metric
        )
    else:
        from ..programs.library import benchmark_by_name

        spec = benchmark_by_name(args.benchmark, args.scale)
        config = session.config
        if args.mps_width is not None:
            config = AnalysisConfig(mps_width=args.mps_width)
        outcome = session.compare(
            spec.build(),
            NoiseModel.uniform_bit_flip(args.noise_a),
            NoiseModel.uniform_bit_flip(args.noise_b),
            metric=args.metric,
            config=config,
        )
    outcome.raise_for_status()
    lines = [
        f"# Comparison: {outcome.name}",
        f"metric: {outcome.metric} (tier: {outcome.metric_tier})",
        f"value: {outcome.bound:.6e}",
    ]
    if outcome.value_a is not None and outcome.value_b is not None:
        lines.append(
            f"side A bound: {outcome.value_a:.6e}   side B bound: {outcome.value_b:.6e}"
        )
    lines.append(f"elapsed: {outcome.elapsed_seconds:.3f}s   fingerprint: {outcome.fingerprint}")
    return "\n".join(lines)


def _emit(text: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    configure_logging(getattr(args, "log_level", "INFO"))
    scheduler = not getattr(args, "no_scheduler", False)
    progress = bool(getattr(args, "progress", False))
    sections: list[str] = []
    with trace_to_file(getattr(args, "trace", None)):
        with session_from_args(args) as session:
            if args.command in ("table2", "all"):
                result = run_table2(
                    scale=args.scale,
                    mps_width=getattr(args, "mps_width", None),
                    benchmarks=getattr(args, "benchmarks", None),
                    include_lqr=not getattr(args, "no_lqr", False),
                    session=session,
                    scheduler=scheduler,
                    progress=progress,
                )
                sections.append(render_table2(result, markdown=args.markdown))
            if args.command in ("figure14", "all"):
                widths = getattr(args, "widths", list(DEFAULT_WIDTHS))
                benchmark = getattr(args, "benchmark", "Isingmodel45")
                result = run_figure14(
                    scale=args.scale,
                    widths=widths,
                    benchmark=benchmark,
                    session=session,
                    scheduler=scheduler,
                    progress=progress,
                )
                sections.append(render_figure14(result, markdown=args.markdown))
            if args.command in ("table3", "all"):
                result = run_table3(shots=getattr(args, "shots", 8192), session=session)
                sections.append(render_table3(result, markdown=args.markdown))
            if args.command == "compare":
                sections.append(run_compare(args, session))

    _emit("\n\n".join(sections), args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
