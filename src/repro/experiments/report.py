"""Plain-text / Markdown rendering of experiment results.

The experiment harnesses return structured results; this module turns them
into the same table shapes the paper prints, for the CLI runner, the
examples, and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

from .figure14 import Figure14Result
from .table2 import Table2Result
from .table3 import Table3Result

__all__ = [
    "format_table",
    "render_table2",
    "render_figure14",
    "render_table3",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an ASCII table with aligned columns."""
    columns = (
        [list(map(str, column)) for column in zip(headers, *rows)]
        if rows
        else [[h] for h in headers]
    )
    widths = [max(len(cell) for cell in column) for column in columns]
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = [render_row(headers), "-+-".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _scaled(value: float | None, factor: float = 1e4) -> str:
    """Format a bound in units of 1e-4, like the paper's Table 2."""
    if value is None:
        return "timed out"
    return f"{value * factor:.2f}"


def render_table2(result: Table2Result, *, markdown: bool = False) -> str:
    """Render Table 2 (bounds in units of 1e-4, runtimes in seconds)."""
    headers = [
        "Benchmark",
        "Qubits",
        "Gates",
        "Gleipnir bound (x1e-4)",
        "Time (s)",
        "LQR full-sim (x1e-4)",
        "LQR time (s)",
        "Worst case (x1e-4)",
    ]
    rows = []
    for row in result.rows:
        if row.lqr_timed_out:
            lqr = "timed out"
        elif row.lqr_bound is None:
            lqr = "-"
        else:
            lqr = _scaled(row.lqr_bound)
        lqr_time = "-" if row.lqr_seconds is None or row.lqr_timed_out else f"{row.lqr_seconds:.1f}"
        rows.append(
            [
                row.benchmark,
                str(row.num_qubits),
                str(row.gate_count),
                _scaled(row.gleipnir_bound),
                f"{row.gleipnir_seconds:.1f}",
                lqr,
                lqr_time,
                _scaled(row.worst_case_bound),
            ]
        )
    title = (
        f"Table 2 (scale={result.scale}, MPS width={result.mps_width}, "
        f"bit-flip p={result.bit_flip_probability:g})"
    )
    body = _markdown_table(headers, rows) if markdown else format_table(headers, rows)
    return f"{title}\n{body}"


def render_figure14(result: Figure14Result, *, markdown: bool = False) -> str:
    """Render the Figure 14 sweep as a table of (width, bound, runtime)."""
    headers = ["MPS size", "Error bound (x1e-4)", "Runtime (s)", "Final delta"]
    rows = [
        [
            str(point.mps_width),
            _scaled(point.error_bound),
            f"{point.runtime_seconds:.1f}",
            f"{point.final_delta:.3e}",
        ]
        for point in result.points
    ]
    title = f"Figure 14 sweep on {result.benchmark} (scale={result.scale})"
    body = _markdown_table(headers, rows) if markdown else format_table(headers, rows)
    return f"{title}\n{body}"


def render_table3(result: Table3Result, *, markdown: bool = False) -> str:
    """Render Table 3 (bounds and measured errors as plain fractions)."""
    headers = ["Circuit", "Mapping", "Gleipnir bound", "Measured error", "Bound >= measured"]
    rows = [
        [
            row.circuit,
            row.mapping_label,
            f"{row.gleipnir_bound:.3f}",
            f"{row.measured_error:.3f}",
            "yes" if row.bound_dominates else "NO",
        ]
        for row in result.rows
    ]
    circuits = sorted({row.circuit for row in result.rows})
    consistency = ", ".join(
        f"{name}: {'consistent' if result.ranking_consistent(name) else 'INCONSISTENT'}"
        for name in circuits
    )
    title = (
        f"Table 3 (emulated device, calibration={result.calibration_name}, "
        f"shots={result.shots}) — mapping ranking {consistency}"
    )
    body = _markdown_table(headers, rows) if markdown else format_table(headers, rows)
    return f"{title}\n{body}"


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join(["---"] * len(headers)) + "|"]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |" for row in rows)
    return "\n".join(lines)
