"""Experiment harnesses regenerating every table and figure of the evaluation."""

from .table2 import Table2Result, Table2Row, run_table2, run_table2_row
from .figure14 import DEFAULT_WIDTHS, Figure14Point, Figure14Result, run_figure14
from .table3 import (
    Table3Result,
    Table3Row,
    analyze_mapped_circuit,
    default_mapping_experiments,
    run_table3,
)
from .report import format_table, render_figure14, render_table2, render_table3

__all__ = [name for name in dir() if not name.startswith("_")]
