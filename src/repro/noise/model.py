"""Noise models: mapping gate applications to noise channels.

A *noise model* ω specifies the noisy version of each gate on the target
device (Section 2.3).  In this library a :class:`NoiseModel` resolves a gate
application ``U(q1, ..., qk)`` to a local k-qubit noise channel N, and the
noisy gate is the composition ``N ∘ U`` (noise after the ideal gate, the
default) or ``U ∘ N``.

Resolution priority (most specific wins):

1. an override registered for ``(gate name, physical qubits)``;
2. an override registered for the physical qubits alone (used by
   calibration-driven device models, where noise depends on *where* the gate
   runs rather than which gate it is);
3. an override registered for the gate name;
4. the default channel for the gate's arity.

The paper's sample model (Section 7.1) — a bit flip with probability
``p = 1e-4`` on every 1-qubit gate and on the first qubit of every 2-qubit
gate — is available as :meth:`NoiseModel.uniform_bit_flip`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from ..circuits.gates import Gate
from ..errors import NoiseModelError
from ..linalg.channels import QuantumChannel, unitary_channel
from . import channels as noise_channels

__all__ = ["NoiseModel", "GateNoiseRule"]

ChannelFactory = Callable[[Gate, tuple[int, ...]], QuantumChannel | None]


@dataclasses.dataclass(frozen=True)
class GateNoiseRule:
    """A single resolved noise assignment, mostly for reporting/debugging."""

    gate_name: str
    qubits: tuple[int, ...] | None
    channel: QuantumChannel


class NoiseModel:
    """Maps gate applications to local noise channels."""

    def __init__(self, *, name: str = "noise_model", noise_after_gate: bool = True):
        self._name = name
        self._noise_after_gate = bool(noise_after_gate)
        self._default_by_arity: dict[int, QuantumChannel] = {}
        self._by_gate_name: dict[str, QuantumChannel] = {}
        self._by_qubits: dict[tuple[int, ...], QuantumChannel] = {}
        self._by_gate_and_qubits: dict[tuple[str, tuple[int, ...]], QuantumChannel] = {}
        self._factory: ChannelFactory | None = None

    # -- construction -------------------------------------------------------
    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """A model under which every gate is perfect."""
        return cls(name="noiseless")

    @classmethod
    def uniform_bit_flip(cls, p: float) -> "NoiseModel":
        """The paper's sample model: bit flip with probability ``p`` per gate.

        1-qubit gates get a bit flip on their qubit; 2-qubit gates get a bit
        flip on their *first* operand (Section 7.1).
        """
        model = cls(name=f"uniform_bit_flip({p:g})")
        single = noise_channels.bit_flip(p)
        model.set_default(1, single)
        model.set_default(2, single.tensor(noise_channels.identity_noise(1)))
        return model

    @classmethod
    def uniform_depolarizing(cls, p1: float, p2: float | None = None) -> "NoiseModel":
        """Depolarizing noise with 1-qubit rate ``p1`` and 2-qubit rate ``p2``."""
        p2 = p1 * 10 if p2 is None else p2
        model = cls(name=f"uniform_depolarizing({p1:g},{p2:g})")
        model.set_default(1, noise_channels.depolarizing(p1))
        model.set_default(2, noise_channels.two_qubit_depolarizing(p2))
        return model

    @classmethod
    def from_factory(cls, factory: ChannelFactory, *, name: str = "factory") -> "NoiseModel":
        """A model whose channels are produced by an arbitrary callable."""
        model = cls(name=name)
        model._factory = factory
        return model

    # -- mutation -------------------------------------------------------------
    def set_default(self, arity: int, channel: QuantumChannel) -> "NoiseModel":
        """Set the default channel for gates of a given arity."""
        self._check_channel(channel, arity)
        self._default_by_arity[int(arity)] = channel
        return self

    def add_gate_rule(self, gate_name: str, channel: QuantumChannel) -> "NoiseModel":
        """Attach a channel to every application of a named gate."""
        self._by_gate_name[gate_name.lower()] = channel
        return self

    def add_qubit_rule(self, qubits: Sequence[int], channel: QuantumChannel) -> "NoiseModel":
        """Attach a channel to any gate acting on exactly these qubits (in order)."""
        qubits = tuple(int(q) for q in qubits)
        self._check_channel(channel, len(qubits))
        self._by_qubits[qubits] = channel
        return self

    def add_rule(
        self, gate_name: str, qubits: Sequence[int], channel: QuantumChannel
    ) -> "NoiseModel":
        """Attach a channel to a named gate on specific qubits."""
        qubits = tuple(int(q) for q in qubits)
        self._check_channel(channel, len(qubits))
        self._by_gate_and_qubits[(gate_name.lower(), qubits)] = channel
        return self

    @staticmethod
    def _check_channel(channel: QuantumChannel, arity: int) -> None:
        if channel.dim_in != 2**arity or channel.dim_out != 2**arity:
            raise NoiseModelError(
                f"channel acts on dimension {channel.dim_in}, expected {2 ** arity} "
                f"for arity {arity}"
            )

    # -- queries ----------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def noise_after_gate(self) -> bool:
        return self._noise_after_gate

    def channel_for(self, gate: Gate, qubits: Sequence[int]) -> QuantumChannel | None:
        """The local noise channel attached to this gate application (or None)."""
        qubits = tuple(int(q) for q in qubits)
        key = (gate.name, qubits)
        if key in self._by_gate_and_qubits:
            return self._by_gate_and_qubits[key]
        if qubits in self._by_qubits:
            return self._by_qubits[qubits]
        if gate.name in self._by_gate_name:
            return self._by_gate_name[gate.name]
        if self._factory is not None:
            produced = self._factory(gate, qubits)
            if produced is not None:
                self._check_channel(produced, gate.num_qubits)
                return produced
        return self._default_by_arity.get(gate.num_qubits)

    def noisy_gate_channel(self, gate: Gate, qubits: Sequence[int]) -> QuantumChannel:
        """The complete noisy gate superoperator ``N ∘ U`` (or ``U ∘ N``)."""
        ideal = unitary_channel(gate.matrix, name=gate.name)
        noise = self.channel_for(gate, qubits)
        if noise is None:
            return ideal
        if noise.dim_in != ideal.dim_out:
            raise NoiseModelError(
                f"noise channel dimension {noise.dim_in} does not match gate "
                f"{gate.name!r} of dimension {ideal.dim_out}"
            )
        return noise.compose(ideal) if self._noise_after_gate else ideal.compose(noise)

    def is_position_dependent(self) -> bool:
        """Whether the attached noise depends on *which* qubits a gate acts on.

        Uniform models (the paper's sample model) return False, which lets the
        analyzer share cached SDP bounds across register positions.  Models
        with per-qubit rules or a custom factory return True.
        """
        return bool(self._by_qubits) or bool(self._by_gate_and_qubits) or self._factory is not None

    def is_noiseless_for(self, gate: Gate, qubits: Sequence[int]) -> bool:
        """Whether this gate application carries no noise under the model."""
        return self.channel_for(gate, qubits) is None

    # -- serialization -------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical dict form of the model's declarative rule tables.

        Rule lists are emitted in sorted key order so structurally identical
        models serialize identically regardless of registration order (the
        analysis engine fingerprints jobs on this form).  Models backed by an
        opaque channel *factory* cannot be described declaratively and raise
        :class:`~repro.errors.NoiseModelError`.
        """
        if self._factory is not None:
            raise NoiseModelError(
                f"noise model {self._name!r} is backed by a channel factory and "
                "cannot be serialized; register explicit rules instead"
            )
        return {
            "name": self._name,
            "noise_after_gate": self._noise_after_gate,
            "defaults": [
                [arity, self._default_by_arity[arity].to_json_dict()]
                for arity in sorted(self._default_by_arity)
            ],
            "gate_rules": [
                [gate_name, self._by_gate_name[gate_name].to_json_dict()]
                for gate_name in sorted(self._by_gate_name)
            ],
            "qubit_rules": [
                [list(qubits), self._by_qubits[qubits].to_json_dict()]
                for qubits in sorted(self._by_qubits)
            ],
            "gate_qubit_rules": [
                [
                    gate_name,
                    list(qubits),
                    self._by_gate_and_qubits[(gate_name, qubits)].to_json_dict(),
                ]
                for gate_name, qubits in sorted(self._by_gate_and_qubits)
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "NoiseModel":
        """Inverse of :meth:`to_json_dict`."""
        try:
            model = cls(
                name=payload["name"],
                noise_after_gate=payload.get("noise_after_gate", True),
            )
            for arity, channel in payload.get("defaults", ()):
                model.set_default(int(arity), QuantumChannel.from_json_dict(channel))
            for gate_name, channel in payload.get("gate_rules", ()):
                model.add_gate_rule(gate_name, QuantumChannel.from_json_dict(channel))
            for qubits, channel in payload.get("qubit_rules", ()):
                model.add_qubit_rule(qubits, QuantumChannel.from_json_dict(channel))
            for gate_name, qubits, channel in payload.get("gate_qubit_rules", ()):
                model.add_rule(gate_name, qubits, QuantumChannel.from_json_dict(channel))
        except (TypeError, KeyError, ValueError) as exc:
            raise NoiseModelError(f"malformed noise model payload: {exc}") from exc
        return model

    def rules(self) -> list[GateNoiseRule]:
        """All explicitly registered rules (for reports and debugging)."""
        out: list[GateNoiseRule] = []
        for (gate_name, qubits), channel in self._by_gate_and_qubits.items():
            out.append(GateNoiseRule(gate_name, qubits, channel))
        for qubits, channel in self._by_qubits.items():
            out.append(GateNoiseRule("*", qubits, channel))
        for gate_name, channel in self._by_gate_name.items():
            out.append(GateNoiseRule(gate_name, None, channel))
        for arity, channel in self._default_by_arity.items():
            out.append(GateNoiseRule(f"<default arity {arity}>", None, channel))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseModel(name={self._name!r}, rules={len(self.rules())})"
