"""Noise channels, noise models, and calibration-driven device models."""

from .channels import (
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    coherent_overrotation,
    depolarizing,
    identity_noise,
    pauli_channel,
    phase_damping,
    phase_flip,
    thermal_relaxation,
    two_qubit_depolarizing,
)
from .model import GateNoiseRule, NoiseModel
from .calibration import CalibrationData, noise_model_from_calibration

__all__ = [name for name in dir() if not name.startswith("_")]
