"""Calibration-driven device noise models.

Real devices publish calibration data: per-qubit single-qubit gate error
rates, per-edge two-qubit gate error rates, and per-qubit readout errors.
The paper's Table 3 experiment builds its noise model for IBM Boeblingen from
such data.  :class:`CalibrationData` carries that information and
:func:`noise_model_from_calibration` turns it into a
:class:`~repro.noise.model.NoiseModel` keyed on *physical* qubits, so the
same logical circuit mapped to different physical qubits sees different
noise — which is exactly what the qubit-mapping study exercises.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from ..errors import NoiseModelError
from ..linalg.channels import QuantumChannel
from . import channels as noise_channels
from .model import NoiseModel

__all__ = ["CalibrationData", "noise_model_from_calibration"]


@dataclasses.dataclass
class CalibrationData:
    """Device calibration snapshot.

    Attributes:
        single_qubit_error: physical qubit -> 1-qubit gate error probability.
        two_qubit_error: physical edge (a, b) -> 2-qubit gate error probability.
            Edges are looked up symmetrically.
        readout_error: physical qubit -> probability of misreading the outcome.
        t1: optional relaxation times (same keys as ``single_qubit_error``).
        t2: optional dephasing times.
        name: label used in reports.
    """

    single_qubit_error: dict[int, float]
    two_qubit_error: dict[tuple[int, int], float]
    readout_error: dict[int, float] = dataclasses.field(default_factory=dict)
    t1: dict[int, float] = dataclasses.field(default_factory=dict)
    t2: dict[int, float] = dataclasses.field(default_factory=dict)
    name: str = "calibration"

    def __post_init__(self) -> None:
        for qubit, error in self.single_qubit_error.items():
            if not 0 <= error <= 1:
                raise NoiseModelError(f"1q error for qubit {qubit} out of range: {error}")
        for edge, error in self.two_qubit_error.items():
            if not 0 <= error <= 1:
                raise NoiseModelError(f"2q error for edge {edge} out of range: {error}")
        for qubit, error in self.readout_error.items():
            if not 0 <= error <= 1:
                raise NoiseModelError(f"readout error for qubit {qubit} out of range: {error}")

    def qubits(self) -> list[int]:
        """All physical qubits mentioned by the calibration."""
        qubits = set(self.single_qubit_error) | set(self.readout_error)
        for a, b in self.two_qubit_error:
            qubits.update((a, b))
        return sorted(qubits)

    def edge_error(self, a: int, b: int) -> float:
        """Two-qubit error for an edge, looked up in either orientation."""
        if (a, b) in self.two_qubit_error:
            return self.two_qubit_error[(a, b)]
        if (b, a) in self.two_qubit_error:
            return self.two_qubit_error[(b, a)]
        raise NoiseModelError(f"no calibration entry for edge ({a}, {b})")

    def has_edge(self, a: int, b: int) -> bool:
        return (a, b) in self.two_qubit_error or (b, a) in self.two_qubit_error

    def average_single_qubit_error(self) -> float:
        values = list(self.single_qubit_error.values())
        return sum(values) / len(values) if values else 0.0

    def average_two_qubit_error(self) -> float:
        values = list(self.two_qubit_error.values())
        return sum(values) / len(values) if values else 0.0


def _single_qubit_channel(kind: str, p: float) -> QuantumChannel:
    if kind == "bit_flip":
        return noise_channels.bit_flip(p)
    if kind == "depolarizing":
        return noise_channels.depolarizing(p)
    raise NoiseModelError(f"unknown noise kind {kind!r}")


def _two_qubit_channel(kind: str, p: float) -> QuantumChannel:
    if kind == "bit_flip":
        # Bit flip on the first operand, as in the paper's sample model.
        return noise_channels.bit_flip(p).tensor(noise_channels.identity_noise(1))
    if kind == "depolarizing":
        return noise_channels.two_qubit_depolarizing(p)
    raise NoiseModelError(f"unknown noise kind {kind!r}")


def noise_model_from_calibration(
    calibration: CalibrationData,
    *,
    kind: str = "depolarizing",
    extra_edges: Mapping[tuple[int, int], float] | None = None,
) -> NoiseModel:
    """Build a physical-qubit-keyed noise model from calibration data.

    Args:
        calibration: the device calibration snapshot.
        kind: ``"depolarizing"`` (default) or ``"bit_flip"`` noise shape.
        extra_edges: optional additional edge error rates (e.g. for edges the
            calibration is missing but the router might use).

    The returned model registers a per-qubit rule for every physical qubit and
    a per-edge rule (in both orientations) for every calibrated edge.  Gates on
    uncalibrated qubits fall back to the calibration's average error rates.
    """
    model = NoiseModel(name=f"{calibration.name}:{kind}")

    average_1q = calibration.average_single_qubit_error()
    average_2q = calibration.average_two_qubit_error()
    if average_1q > 0:
        model.set_default(1, _single_qubit_channel(kind, average_1q))
    if average_2q > 0:
        model.set_default(2, _two_qubit_channel(kind, average_2q))

    for qubit, error in calibration.single_qubit_error.items():
        if error > 0:
            model.add_qubit_rule((qubit,), _single_qubit_channel(kind, error))

    edges = dict(calibration.two_qubit_error)
    if extra_edges:
        edges.update(extra_edges)
    for (a, b), error in edges.items():
        if error <= 0:
            continue
        channel = _two_qubit_channel(kind, error)
        model.add_qubit_rule((a, b), channel)
        model.add_qubit_rule((b, a), channel)
    return model
