"""Standard noise channels (Section 2.3).

Each constructor returns a :class:`~repro.linalg.channels.QuantumChannel`.
The paper's evaluation uses the bit-flip channel
``Phi(rho) = (1-p) rho + p X rho X`` with ``p = 1e-4`` on every gate; the
device experiments additionally use depolarizing and damping channels derived
from calibration data.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..errors import NoiseModelError
from ..linalg.channels import QuantumChannel
from ..linalg.operators import (
    I2,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    kron_all,
    pauli_string_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
)

__all__ = [
    "bit_flip",
    "phase_flip",
    "bit_phase_flip",
    "depolarizing",
    "two_qubit_depolarizing",
    "amplitude_damping",
    "phase_damping",
    "pauli_channel",
    "coherent_overrotation",
    "thermal_relaxation",
    "identity_noise",
]


def _check_probability(p: float, name: str = "p") -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise NoiseModelError(f"{name} must lie in [0, 1], got {p}")
    return p


def identity_noise(num_qubits: int = 1) -> QuantumChannel:
    """The noiseless channel on ``num_qubits`` qubits."""
    return QuantumChannel([np.eye(2**num_qubits, dtype=np.complex128)], name="noiseless")


def bit_flip(p: float) -> QuantumChannel:
    """Bit-flip channel ``rho -> (1-p) rho + p X rho X`` (the paper's model)."""
    p = _check_probability(p)
    return QuantumChannel(
        [np.sqrt(1 - p) * I2, np.sqrt(p) * PAULI_X], name=f"bit_flip({p:g})"
    )


def phase_flip(p: float) -> QuantumChannel:
    """Phase-flip channel ``rho -> (1-p) rho + p Z rho Z``."""
    p = _check_probability(p)
    return QuantumChannel(
        [np.sqrt(1 - p) * I2, np.sqrt(p) * PAULI_Z], name=f"phase_flip({p:g})"
    )


def bit_phase_flip(p: float) -> QuantumChannel:
    """Bit-phase-flip channel ``rho -> (1-p) rho + p Y rho Y``."""
    p = _check_probability(p)
    return QuantumChannel(
        [np.sqrt(1 - p) * I2, np.sqrt(p) * PAULI_Y], name=f"bit_phase_flip({p:g})"
    )


def depolarizing(p: float) -> QuantumChannel:
    """Single-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` one of X, Y, Z is applied uniformly at random.
    """
    p = _check_probability(p)
    kraus = [
        np.sqrt(1 - p) * I2,
        np.sqrt(p / 3) * PAULI_X,
        np.sqrt(p / 3) * PAULI_Y,
        np.sqrt(p / 3) * PAULI_Z,
    ]
    return QuantumChannel(kraus, name=f"depolarizing({p:g})")


def two_qubit_depolarizing(p: float) -> QuantumChannel:
    """Two-qubit depolarizing channel over the 15 non-identity Pauli pairs."""
    p = _check_probability(p)
    labels = [
        a + b for a in "IXYZ" for b in "IXYZ" if not (a == "I" and b == "I")
    ]
    kraus = [np.sqrt(1 - p) * np.eye(4, dtype=np.complex128)]
    for label in labels:
        kraus.append(np.sqrt(p / len(labels)) * pauli_string_matrix(label))
    return QuantumChannel(kraus, name=f"depolarizing2({p:g})")


def amplitude_damping(gamma: float) -> QuantumChannel:
    """Amplitude damping (energy relaxation) with decay probability ``gamma``."""
    gamma = _check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return QuantumChannel([k0, k1], name=f"amplitude_damping({gamma:g})")


def phase_damping(lam: float) -> QuantumChannel:
    """Phase damping (pure dephasing) with parameter ``lam``."""
    lam = _check_probability(lam, "lambda")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - lam)]], dtype=np.complex128)
    k1 = np.array([[0, 0], [0, np.sqrt(lam)]], dtype=np.complex128)
    return QuantumChannel([k0, k1], name=f"phase_damping({lam:g})")


def pauli_channel(probabilities: Mapping[str, float]) -> QuantumChannel:
    """General n-qubit Pauli channel from a label -> probability mapping.

    The identity label (``"I" * n``) may be omitted; its probability is the
    remaining mass.  Example: ``pauli_channel({"X": 0.01, "Z": 0.02})``.
    """
    if not probabilities:
        raise NoiseModelError("pauli_channel needs at least one Pauli label")
    lengths = {len(label) for label in probabilities}
    if len(lengths) != 1:
        raise NoiseModelError("all Pauli labels must have the same length")
    n = lengths.pop()
    total = 0.0
    kraus = []
    identity_label = "I" * n
    for label, prob in probabilities.items():
        prob = _check_probability(prob, f"p[{label}]")
        total += prob
        if prob > 0:
            kraus.append(np.sqrt(prob) * pauli_string_matrix(label))
    if total > 1.0 + 1e-12:
        raise NoiseModelError(f"Pauli probabilities sum to {total} > 1")
    remaining = max(0.0, 1.0 - total)
    if identity_label not in probabilities and remaining > 0:
        kraus.insert(0, np.sqrt(remaining) * np.eye(2**n, dtype=np.complex128))
    return QuantumChannel(kraus, name="pauli_channel")


def coherent_overrotation(axis: str, angle: float, num_qubits: int = 1) -> QuantumChannel:
    """Coherent (unitary) over-rotation error about X, Y or Z on every qubit."""
    axis = axis.upper()
    rotations = {"X": rx_matrix, "Y": ry_matrix, "Z": rz_matrix}
    if axis not in rotations:
        raise NoiseModelError(f"axis must be X, Y or Z, got {axis!r}")
    single = rotations[axis](angle)
    unitary = kron_all([single] * num_qubits)
    return QuantumChannel([unitary], name=f"overrotation_{axis}({angle:g})")


def thermal_relaxation(t1: float, t2: float, gate_time: float) -> QuantumChannel:
    """A simple thermal relaxation channel built from damping + dephasing.

    ``t1`` and ``t2`` are relaxation/dephasing times and ``gate_time`` the
    duration of the gate, all in the same units.  The channel composes an
    amplitude damping of strength ``1 - exp(-t/T1)`` with a phase damping
    chosen so the total dephasing rate matches ``T2`` (requires
    ``T2 <= 2 T1``).
    """
    if t1 <= 0 or t2 <= 0 or gate_time < 0:
        raise NoiseModelError("T1, T2 must be positive and gate_time non-negative")
    if t2 > 2 * t1 + 1e-12:
        raise NoiseModelError("thermal relaxation requires T2 <= 2*T1")
    gamma = 1.0 - np.exp(-gate_time / t1)
    # Total dephasing factor exp(-t/T2) = exp(-t/(2 T1)) * sqrt(1 - lambda).
    pure_dephasing = np.exp(-gate_time / t2) / np.exp(-gate_time / (2 * t1))
    lam = max(0.0, 1.0 - pure_dephasing**2)
    channel = phase_damping(min(1.0, lam)).compose(amplitude_damping(gamma))
    return QuantumChannel(channel.kraus, name=f"thermal(T1={t1:g},T2={t2:g},t={gate_time:g})")
