"""Legacy setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
fully offline environments (no access to PyPI for build isolation) can still
install the package with ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
